//! Deriving one KG side from the world.
//!
//! Each side of a dataset is produced by an independent, seeded pass over
//! the same [`World`], controlled by a [`DerivationSpec`]: which entities
//! appear, which facts survive (sparsity / disjoint fact partitions), which
//! properties are kept, how values are rendered (language, dialect,
//! format, precision), which entities are long-tail, and whether entity
//! names are opaque Wikidata-style ids.
//!
//! Long-tail entities follow the paper's Fig. 2 example: they lose their
//! structured attributes and most relations, keeping only a long `comment`
//! whose text still mentions their neighbours — so the matching evidence
//! exists, but only for a model that reads text.

use crate::language::{Lang, Lexicon, SchemaDialect, TWord, ValueFormat};
use crate::world::{EntityKind, PropKind, PropValue, WRel, World};
use sdea_kg::{EntityId, KgBuilder, KnowledgeGraph};
use sdea_tensor::Rng;
use std::collections::HashMap;

/// Parameters of one KG side's derivation.
#[derive(Clone, Debug)]
pub struct DerivationSpec {
    /// Rendering language of all literals.
    pub lang: Lang,
    /// Attribute/relation naming dialect.
    pub dialect: SchemaDialect,
    /// Structured value formatting.
    pub format: ValueFormat,
    /// Probability an alignable world entity appears in this KG.
    pub entity_keep: f64,
    /// Probability of keeping a relational fact (both endpoints present).
    pub rel_keep: f64,
    /// When set, facts are partitioned across sides: this side keeps facts
    /// hashed to `side` plus a `shared` fraction kept by both. Models the
    /// OpenEA V1 datasets where aligned entities rarely share neighbours.
    pub rel_partition: Option<PartitionSpec>,
    /// Probability of keeping each structured attribute.
    pub attr_keep: f64,
    /// Probability the entity name appears as an attribute (`name`/`label`).
    pub name_attr_prob: f64,
    /// Probability an entity carries a long-text comment.
    pub comment_prob: f64,
    /// Fraction of persons/works demoted to long-tail.
    pub long_tail_frac: f64,
    /// Render entity names as opaque `Q…` ids (Wikidata side of OpenEA D-W).
    pub qid_names: bool,
    /// Probability a date renders as the bare year (precision mismatch).
    pub date_year_only: f64,
    /// Side seed (must differ between the two sides).
    pub seed: u64,
}

/// Fact partitioning for low neighbour overlap.
#[derive(Copy, Clone, Debug)]
pub struct PartitionSpec {
    /// Which half of the partition this side keeps (0 or 1).
    pub side: u8,
    /// Fraction of facts kept by both sides.
    pub shared: f64,
}

impl Default for DerivationSpec {
    fn default() -> Self {
        DerivationSpec {
            lang: Lang::En,
            dialect: SchemaDialect::Dbp,
            format: ValueFormat::IsoCm,
            entity_keep: 1.0,
            rel_keep: 1.0,
            rel_partition: None,
            attr_keep: 0.9,
            name_attr_prob: 0.95,
            comment_prob: 0.8,
            long_tail_frac: 0.0,
            qid_names: false,
            date_year_only: 0.0,
            seed: 0,
        }
    }
}

/// One derived KG side plus its mapping back to world entity ids.
#[derive(Clone, Debug)]
pub struct GeneratedKg {
    /// The knowledge graph.
    pub kg: KnowledgeGraph,
    /// `world_of[entity.0] = world id`.
    pub world_of: Vec<usize>,
    /// Inverse map: world id -> entity id in this KG.
    pub entity_of_world: HashMap<usize, EntityId>,
    /// World ids of entities marked long-tail on this side.
    pub long_tail: Vec<usize>,
}

/// Derives one KG side.
pub fn derive_kg(world: &World, spec: &DerivationSpec) -> GeneratedKg {
    let lex = Lexicon::new();
    let mut rng = Rng::seed_from_u64(spec.seed ^ 0x9E37_79B9_97F4_A7C1);
    let mut b = KgBuilder::new();
    let mut world_of: Vec<usize> = Vec::new();
    let mut entity_of_world: HashMap<usize, EntityId> = HashMap::new();
    let mut long_tail: Vec<usize> = Vec::new();
    let mut is_long_tail = vec![false; world.len()];

    // --- presence + naming ---
    let mut presence_rng = rng.split();
    let mut naming: Vec<Option<String>> = vec![None; world.len()];
    for (wid, ent) in world.entities.iter().enumerate() {
        let present = ent.kind == EntityKind::Concept || presence_rng.chance(spec.entity_keep);
        if !present {
            continue;
        }
        let name = entity_surface(world, wid, spec, &lex);
        naming[wid] = Some(name);
    }
    // Register entities in world order. Name pools make IRI collisions
    // possible (two "Juan_Garcia"s); disambiguate like DBpedia does.
    let mut used: HashMap<String, usize> = HashMap::new();
    for (wid, name) in naming.iter().enumerate() {
        if let Some(name) = name {
            let n = used.entry(name.clone()).or_insert(0);
            *n += 1;
            let unique = if *n == 1 { name.clone() } else { format!("{name}_({n})") };
            let id = b.entity(&unique);
            debug_assert_eq!(id.0 as usize, world_of.len(), "duplicate entity surface {unique}");
            world_of.push(wid);
            entity_of_world.insert(wid, id);
        }
    }

    // --- long-tail marking (world order => deterministic) ---
    let mut lt_rng = rng.split();
    for (wid, lt) in is_long_tail.iter_mut().enumerate() {
        if entity_of_world.contains_key(&wid)
            && matches!(world.entities[wid].kind, EntityKind::Person | EntityKind::Work)
            && lt_rng.chance(spec.long_tail_frac)
        {
            *lt = true;
            long_tail.push(wid);
        }
    }

    // --- relational triples ---
    let mut rel_rng = rng.split();
    for (fi, &(s, r, o)) in world.facts.iter().enumerate() {
        let (Some(&es), Some(&eo)) = (entity_of_world.get(&s), entity_of_world.get(&o)) else {
            continue;
        };
        if let Some(p) = spec.rel_partition {
            let h = fact_hash(fi);
            let shared = ((h >> 32) as f64 / u32::MAX as f64) < p.shared;
            let side = (h & 1) as u8;
            if !shared && side != p.side {
                continue;
            }
        }
        if !rel_rng.chance(spec.rel_keep) {
            continue;
        }
        // Long-tail entities keep their TypeOf link and rarely anything
        // else, in either direction (the paper's F.W._Bruskewitz example:
        // 3 triples, matching only on general concepts).
        if (is_long_tail[s] || is_long_tail[o]) && r != WRel::TypeOf && !rel_rng.chance(0.2) {
            continue;
        }
        let rel = b.relation(spec.dialect.rel_name(r));
        b.rel_triple_ids(es, rel, eo);
    }

    // --- attributed triples ---
    let mut attr_rng = rng.split();
    for (&wid, &eid) in sorted_entries(&entity_of_world) {
        let ent = &world.entities[wid];
        let lt = is_long_tail[wid];
        // name attribute
        if !lt && !spec.qid_names && attr_rng.chance(spec.name_attr_prob) {
            let attr = b.attribute(spec.dialect.attr_name(PropKind::Name));
            let surface = readable_name(world, wid, spec.lang, &lex);
            b.attr_triple_ids(eid, attr, surface);
        }
        // structured attributes
        if !lt {
            for &(prop, value) in &ent.props {
                if !attr_rng.chance(spec.attr_keep) {
                    continue;
                }
                let attr = b.attribute(spec.dialect.attr_name(prop));
                let rendered = render_value(prop, value, spec, &mut attr_rng);
                b.attr_triple_ids(eid, attr, rendered);
            }
        }
        // comment
        let wants_comment = if lt { true } else { attr_rng.chance(spec.comment_prob) };
        if wants_comment && ent.kind != EntityKind::Concept {
            let attr = b.attribute(spec.dialect.attr_name(PropKind::Comment));
            let text = comment_text(world, wid, spec, &lex);
            b.attr_triple_ids(eid, attr, text);
        }
    }

    GeneratedKg { kg: b.build(), world_of, entity_of_world, long_tail }
}

/// Deterministically ordered view of the world->entity map.
fn sorted_entries(map: &HashMap<usize, EntityId>) -> std::vec::IntoIter<(&usize, &EntityId)> {
    let mut v: Vec<(&usize, &EntityId)> = map.iter().collect();
    v.sort_by_key(|&(w, _)| *w);
    v.into_iter()
}

fn fact_hash(fi: usize) -> u64 {
    let mut z = (fi as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

/// The unique IRI-like surface of an entity in a KG.
fn entity_surface(world: &World, wid: usize, spec: &DerivationSpec, lex: &Lexicon) -> String {
    let ent = &world.entities[wid];
    if let Some(tw) = ent.concept {
        return lex.tword(tw, spec.lang);
    }
    if spec.qid_names {
        // Opaque id; keyed by side seed so the two sides never share ids.
        return format!("Q{}", (wid as u64 * 2654435761 + spec.seed * 97) % 10_000_000);
    }
    let base = lex.bank().phrase(&ent.name, spec.lang);
    // IRI convention: underscores.
    base.replace(' ', "_")
}

/// Human-readable name (spaces) used for the name attribute.
fn readable_name(world: &World, wid: usize, lang: Lang, lex: &Lexicon) -> String {
    let ent = &world.entities[wid];
    if let Some(tw) = ent.concept {
        return lex.tword(tw, lang);
    }
    lex.bank().phrase(&ent.name, lang)
}

fn render_value(prop: PropKind, value: PropValue, spec: &DerivationSpec, rng: &mut Rng) -> String {
    match (prop, value) {
        (PropKind::BirthDate, PropValue::Date { y, m, d }) => {
            if rng.chance(spec.date_year_only) {
                spec.format.year(y)
            } else {
                spec.format.date(y, m, d)
            }
        }
        (PropKind::Height, PropValue::Float(cm)) => spec.format.height_cm(cm),
        (PropKind::Population, PropValue::Int(p)) => spec.format.population(p),
        (PropKind::Elevation, PropValue::Float(e)) => format!("{e:.0}"),
        (PropKind::Area, PropValue::Float(a)) => spec.format.area(a),
        (PropKind::Founded | PropKind::Established | PropKind::ReleaseYear, PropValue::Year(y)) => {
            spec.format.year(y)
        }
        (p, v) => unreachable!("no renderer for {p:?} {v:?}"),
    }
}

/// Long-text comment verbalizing the entity's world facts in the KG's
/// language — carries the paper's direct & indirect associations.
fn comment_text(world: &World, wid: usize, spec: &DerivationSpec, lex: &Lexicon) -> String {
    let lang = spec.lang;
    let ent = &world.entities[wid];
    let name = readable_name(world, wid, lang, lex);
    let t = |w: TWord| lex.tword(w, lang);
    let nm = |other: usize| readable_name(world, other, lang, lex);
    let mut sentences: Vec<String> = Vec::new();
    match ent.kind {
        EntityKind::Person => {
            let mut born_place = None;
            let mut nation = None;
            let mut clubs = Vec::new();
            let mut alma = None;
            for &(_, r, o) in world.facts_of(wid) {
                match r {
                    WRel::BornIn => born_place = Some(o),
                    WRel::Nationality => nation = Some(o),
                    WRel::PlaysFor => clubs.push(o),
                    WRel::AlmaMater => alma = Some(o),
                    _ => {}
                }
            }
            let mut first =
                format!("{name} {} {} {}", t(TWord::Is), t(TWord::A), t(TWord::PersonTw));
            if let Some(bp) = born_place {
                first.push_str(&format!(" {} {} {}", t(TWord::BornTw), t(TWord::In), nm(bp)));
            }
            if let Some(n) = nation {
                first.push_str(&format!(" {} {}", t(TWord::FromTw), nm(n)));
            }
            sentences.push(first);
            if !clubs.is_empty() {
                let list = clubs
                    .iter()
                    .map(|&c| nm(c))
                    .collect::<Vec<_>>()
                    .join(&format!(" {} ", t(TWord::And)));
                sentences.push(format!("{name} {} {list}", t(TWord::PlaysFor)));
            }
            if let Some(u) = alma {
                sentences.push(format!("{name} {} {}", t(TWord::StudiedAt), nm(u)));
            }
            if let Some((PropKind::BirthDate, PropValue::Date { y, .. })) =
                ent.props.iter().find(|(k, _)| *k == PropKind::BirthDate)
            {
                sentences.push(format!("{} {} {y}", t(TWord::BornTw), t(TWord::YearTw)));
            }
        }
        EntityKind::Club => {
            let place =
                world.facts_of(wid).find(|&&(_, r, _)| r == WRel::LocatedIn).map(|&(_, _, o)| o);
            let mut s = format!("{name} {} {} {}", t(TWord::Is), t(TWord::A), t(TWord::ClubTw));
            if let Some(p) = place {
                s.push_str(&format!(" {} {} {}", t(TWord::LocatedTw), t(TWord::In), nm(p)));
            }
            sentences.push(s);
            if let Some((_, PropValue::Year(y))) =
                ent.props.iter().find(|(k, _)| *k == PropKind::Founded)
            {
                sentences.push(format!("{} {} {y}", t(TWord::FoundedTw), t(TWord::YearTw)));
            }
        }
        EntityKind::Settlement => {
            let country =
                world.facts_of(wid).find(|&&(_, r, _)| r == WRel::CityIn).map(|&(_, _, o)| o);
            let mut s = format!("{name} {} {} {}", t(TWord::Is), t(TWord::A), t(TWord::CityTw));
            if let Some(c) = country {
                s.push_str(&format!(" {} {}", t(TWord::In), nm(c)));
            }
            sentences.push(s);
        }
        EntityKind::Country => {
            sentences.push(format!(
                "{name} {} {} {}",
                t(TWord::Is),
                t(TWord::A),
                t(TWord::CountryTw)
            ));
        }
        EntityKind::University => {
            let place =
                world.facts_of(wid).find(|&&(_, r, _)| r == WRel::UnivIn).map(|&(_, _, o)| o);
            let mut s =
                format!("{name} {} {} {}", t(TWord::Is), t(TWord::A), t(TWord::UniversityTw));
            if let Some(p) = place {
                s.push_str(&format!(" {} {}", t(TWord::In), nm(p)));
            }
            sentences.push(s);
        }
        EntityKind::Work => {
            let creator =
                world.facts_of(wid).find(|&&(_, r, _)| r == WRel::CreatedBy).map(|&(_, _, o)| o);
            let mut s = format!("{name} {} {} {}", t(TWord::Is), t(TWord::A), t(TWord::WorkTw));
            if let Some(c) = creator {
                s.push_str(&format!(" {} {}", t(TWord::CreatedBy), nm(c)));
            }
            sentences.push(s);
            if let Some((_, PropValue::Year(y))) =
                ent.props.iter().find(|(k, _)| *k == PropKind::ReleaseYear)
            {
                sentences.push(format!("{} {y}", t(TWord::YearTw)));
            }
        }
        EntityKind::Concept => {}
    }
    sentences.join(" . ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig { n_core: 200, seed: 11 })
    }

    fn spec(seed: u64) -> DerivationSpec {
        DerivationSpec { seed, ..Default::default() }
    }

    #[test]
    fn derivation_is_deterministic() {
        let w = world();
        let a = derive_kg(&w, &spec(1));
        let b = derive_kg(&w, &spec(1));
        assert_eq!(a.kg.rel_triples(), b.kg.rel_triples());
        assert_eq!(a.kg.attr_triples(), b.kg.attr_triples());
    }

    #[test]
    fn full_keep_includes_all_alignable() {
        let w = world();
        let g = derive_kg(&w, &spec(2));
        assert_eq!(g.kg.num_entities(), w.len());
    }

    #[test]
    fn entity_keep_drops_entities() {
        let w = world();
        let g = derive_kg(&w, &DerivationSpec { entity_keep: 0.5, ..spec(3) });
        let alignable = w.alignable().len();
        let kept =
            g.world_of.iter().filter(|&&wid| w.entities[wid].kind != EntityKind::Concept).count();
        assert!(kept < alignable, "should drop some");
        assert!(kept > alignable / 3, "should keep roughly half");
    }

    #[test]
    fn rel_keep_sparsifies() {
        let w = world();
        let dense = derive_kg(&w, &spec(4));
        let sparse = derive_kg(&w, &DerivationSpec { rel_keep: 0.3, ..spec(4) });
        assert!(sparse.kg.rel_triples().len() < dense.kg.rel_triples().len() / 2);
    }

    #[test]
    fn partition_reduces_fact_overlap() {
        let w = world();
        let mk = |side: u8, seed: u64| {
            derive_kg(
                &w,
                &DerivationSpec {
                    rel_partition: Some(PartitionSpec { side, shared: 0.02 }),
                    ..spec(seed)
                },
            )
        };
        let a = mk(0, 5);
        let b = mk(1, 6);
        // Count world-level fact pairs present in both.
        let to_world = |g: &GeneratedKg| -> std::collections::HashSet<(usize, String, usize)> {
            g.kg.rel_triples()
                .iter()
                .map(|t| {
                    (
                        g.world_of[t.head.0 as usize],
                        g.kg.relation_name(t.rel).to_string(),
                        g.world_of[t.tail.0 as usize],
                    )
                })
                .collect()
        };
        let sa = to_world(&a);
        let sb = to_world(&b);
        let inter = sa.intersection(&sb).count();
        assert!(
            (inter as f64) < 0.15 * sa.len().min(sb.len()) as f64,
            "partition should leave little overlap: {inter} of {}",
            sa.len().min(sb.len())
        );
    }

    #[test]
    fn long_tail_entities_keep_only_comment() {
        let w = world();
        let g = derive_kg(&w, &DerivationSpec { long_tail_frac: 0.5, ..spec(7) });
        assert!(!g.long_tail.is_empty());
        for &wid in &g.long_tail {
            let eid = g.entity_of_world[&wid];
            let attrs: Vec<&str> =
                g.kg.attr_triples_of(eid).map(|t| g.kg.attribute_name(t.attr)).collect();
            assert_eq!(attrs, vec!["comment"], "long-tail {wid} attrs: {attrs:?}");
        }
        // Relations heavily reduced on average (a few incoming edges can
        // survive the 20% keep, but the population must be sparse).
        let mean_deg: f64 =
            g.long_tail.iter().map(|wid| g.kg.degree(g.entity_of_world[wid]) as f64).sum::<f64>()
                / g.long_tail.len() as f64;
        assert!(mean_deg <= 3.0, "mean long-tail degree {mean_deg}");
        {}
    }

    #[test]
    fn qid_names_are_opaque_and_unique() {
        let w = world();
        let g = derive_kg(&w, &DerivationSpec { qid_names: true, ..spec(8) });
        let mut seen = std::collections::HashSet::new();
        for e in g.kg.entities() {
            let n = g.kg.entity_name(e);
            let wid = g.world_of[e.0 as usize];
            if w.entities[wid].kind != EntityKind::Concept {
                assert!(n.starts_with('Q'), "{n}");
                assert!(seen.insert(n.to_string()), "duplicate qid {n}");
            }
        }
    }

    #[test]
    fn comments_mention_neighbor_names() {
        let w = world();
        let g = derive_kg(&w, &DerivationSpec { comment_prob: 1.0, ..spec(9) });
        // find a person with a birth place and check its comment mentions it
        let mut checked = 0;
        for (wid, ent) in w.entities.iter().enumerate() {
            if ent.kind != EntityKind::Person {
                continue;
            }
            let Some(&eid) = g.entity_of_world.get(&wid) else { continue };
            let born = w.facts_of(wid).find(|&&(_, r, _)| r == WRel::BornIn).map(|&(_, _, o)| o);
            let Some(bp) = born else { continue };
            let lex = Lexicon::new();
            let place_name = readable_name(&w, bp, Lang::En, &lex);
            let comment =
                g.kg.attr_triples_of(eid)
                    .find(|t| g.kg.attribute_name(t.attr) == "comment")
                    .map(|t| t.value.clone());
            if let Some(c) = comment {
                assert!(c.contains(&place_name), "comment {c:?} missing {place_name}");
                checked += 1;
            }
            if checked > 10 {
                break;
            }
        }
        assert!(checked > 0, "no persons with comments found");
    }

    #[test]
    fn different_languages_share_digit_anchors_not_names() {
        let w = world();
        let en = derive_kg(&w, &spec(10));
        let zh = derive_kg(&w, &DerivationSpec { lang: Lang::Zh, ..spec(20) });
        // pick an aligned person and compare name attr + birthDate.
        let mut compared = false;
        for (wid, ent) in w.entities.iter().enumerate() {
            if ent.kind != EntityKind::Person {
                continue;
            }
            let (Some(&e1), Some(&e2)) =
                (en.entity_of_world.get(&wid), zh.entity_of_world.get(&wid))
            else {
                continue;
            };
            let name1 = en.kg.attr_triples_of(e1).find(|t| en.kg.attribute_name(t.attr) == "name");
            let name2 = zh.kg.attr_triples_of(e2).find(|t| zh.kg.attribute_name(t.attr) == "name");
            let bd1 =
                en.kg.attr_triples_of(e1).find(|t| en.kg.attribute_name(t.attr) == "birthDate");
            let bd2 =
                zh.kg.attr_triples_of(e2).find(|t| zh.kg.attribute_name(t.attr) == "birthDate");
            if let (Some(n1), Some(n2), Some(b1), Some(b2)) = (name1, name2, bd1, bd2) {
                assert_ne!(n1.value, n2.value, "cipher names must differ");
                assert_eq!(b1.value, b2.value, "same format spec => same date");
                compared = true;
                break;
            }
        }
        assert!(compared);
    }
}
