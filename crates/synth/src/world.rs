//! The ground-truth universe both KGs of a dataset are derived from.
//!
//! A [`World`] is a typed mini-DBpedia: people born in settlements, playing
//! for clubs, studying at universities; settlements in countries; works
//! created by people; everything typed against a handful of
//! general-concept entities (`person`, `club`, …) which therefore become
//! exactly the high-degree noisy neighbours the paper's attention mechanism
//! is designed to discount.

use crate::language::TWord;
use crate::names::WordId;
use sdea_tensor::Rng;

/// Kind of a world entity.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A person (majority of alignable entities).
    Person,
    /// A sports club / organization.
    Club,
    /// A city/town.
    Settlement,
    /// A country.
    Country,
    /// A university.
    University,
    /// A creative work.
    Work,
    /// A general concept (`person`, `club`, …) — hub entities.
    Concept,
}

/// World-level relations (rendered to per-dialect relation names later).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum WRel {
    /// Person -> Settlement.
    BornIn,
    /// Person -> Country.
    Nationality,
    /// Person -> Club.
    PlaysFor,
    /// Club -> Settlement.
    LocatedIn,
    /// Settlement -> Country.
    CityIn,
    /// Person -> University.
    AlmaMater,
    /// University -> Settlement.
    UnivIn,
    /// Work -> Person.
    CreatedBy,
    /// Any -> Concept.
    TypeOf,
    /// Person -> Person.
    Spouse,
}

/// Typed properties (rendered to per-dialect attribute names later).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PropKind {
    /// Entity name/label.
    Name,
    /// Person birth date.
    BirthDate,
    /// Person height (cm).
    Height,
    /// Club founding year.
    Founded,
    /// Settlement/country population.
    Population,
    /// Settlement elevation (m).
    Elevation,
    /// Country area (km²).
    Area,
    /// University establishment year.
    Established,
    /// Work release year.
    ReleaseYear,
    /// Long-text description (rendered at derivation time).
    Comment,
}

/// A typed property value.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum PropValue {
    /// A calendar date.
    Date {
        /// Year.
        y: i32,
        /// Month (1-12).
        m: u32,
        /// Day (1-28).
        d: u32,
    },
    /// An integer quantity.
    Int(i64),
    /// A real quantity.
    Float(f64),
    /// A year.
    Year(i32),
}

/// A world entity.
#[derive(Clone, Debug)]
pub struct WEntity {
    /// What kind of thing it is.
    pub kind: EntityKind,
    /// Name as a word sequence (empty for concepts).
    pub name: Vec<WordId>,
    /// Concept entities render their name from a template word instead.
    pub concept: Option<TWord>,
    /// Structured properties (excluding Name and Comment).
    pub props: Vec<(PropKind, PropValue)>,
}

/// Configuration of world generation.
#[derive(Copy, Clone, Debug)]
pub struct WorldConfig {
    /// Target number of alignable (non-concept) entities.
    pub n_core: usize,
    /// Master seed.
    pub seed: u64,
}

/// The ground-truth universe.
#[derive(Clone, Debug)]
pub struct World {
    /// Entities; index = world entity id.
    pub entities: Vec<WEntity>,
    /// Relational facts `(subject, relation, object)`.
    pub facts: Vec<(usize, WRel, usize)>,
    fact_index: Vec<Vec<usize>>, // facts touching each entity (as subject)
}

impl World {
    /// Samples a world.
    pub fn generate(cfg: WorldConfig) -> Self {
        let mut rng = Rng::seed_from_u64(cfg.seed);
        let mut entities: Vec<WEntity> = Vec::new();
        let mut facts: Vec<(usize, WRel, usize)> = Vec::new();
        let mut next_word: u32 = 0;
        let fresh_words = |n: usize, next_word: &mut u32| -> Vec<WordId> {
            let ws = (0..n).map(|i| WordId(*next_word + i as u32)).collect();
            *next_word += n as u32;
            ws
        };

        // --- concepts (hubs) ---
        let concept_words = [
            (EntityKind::Person, TWord::PersonTw),
            (EntityKind::Club, TWord::ClubTw),
            (EntityKind::Settlement, TWord::CityTw),
            (EntityKind::Country, TWord::CountryTw),
            (EntityKind::University, TWord::UniversityTw),
            (EntityKind::Work, TWord::WorkTw),
        ];
        let mut concept_of = std::collections::HashMap::new();
        for &(kind, tw) in &concept_words {
            let id = entities.len();
            entities.push(WEntity {
                kind: EntityKind::Concept,
                name: Vec::new(),
                concept: Some(tw),
                props: Vec::new(),
            });
            concept_of.insert(kind, id);
        }

        // --- shared name-word pools ---
        // Person and work names draw from pools (like real given/family
        // names), so the same word recurs across entities. This is what
        // makes cross-lingual word correspondences *learnable* from seed
        // alignments: a cipher word seen in training pairs reappears in
        // test entities, mirroring how multilingual BERT transfers.
        let n_for_pools = cfg.n_core.max(20);
        let given_pool = fresh_words(40, &mut next_word);
        let family_pool = fresh_words((n_for_pools / 3).max(60), &mut next_word);
        let noun_pool = fresh_words(80, &mut next_word);
        let club_prefix_pool = fresh_words(25, &mut next_word);

        // --- counts ---
        let n = cfg.n_core.max(20);
        let n_countries = (n / 60).clamp(6, 40);
        let n_settlements = (n * 12 / 100).max(8);
        let n_clubs = (n * 12 / 100).max(6);
        let n_universities = (n * 5 / 100).max(3);
        let n_works = (n * 12 / 100).max(4);
        let n_persons = n
            .saturating_sub(n_countries + n_settlements + n_clubs + n_universities + n_works)
            .max(10);

        // --- countries ---
        let countries: Vec<usize> = (0..n_countries)
            .map(|_| {
                let id = entities.len();
                let name = fresh_words(1, &mut next_word);
                let props = vec![
                    (PropKind::Area, PropValue::Float(rng.uniform(5_000.0, 2_000_000.0) as f64)),
                    (PropKind::Population, PropValue::Int(rng.range(500_000, 200_000_000) as i64)),
                ];
                entities.push(WEntity { kind: EntityKind::Country, name, concept: None, props });
                facts.push((id, WRel::TypeOf, concept_of[&EntityKind::Country]));
                id
            })
            .collect();

        // --- settlements (Zipf over countries so some countries are hubs) ---
        let settlements: Vec<usize> = (0..n_settlements)
            .map(|_| {
                let id = entities.len();
                let name = fresh_words(1 + rng.below(2), &mut next_word);
                let props = vec![
                    (
                        PropKind::Population,
                        PropValue::Int((10f64.powf(rng.uniform(3.0, 7.0) as f64)) as i64),
                    ),
                    (PropKind::Elevation, PropValue::Float(rng.uniform(0.0, 2500.0) as f64)),
                ];
                entities.push(WEntity { kind: EntityKind::Settlement, name, concept: None, props });
                let country = countries[rng.zipf(countries.len(), 1.1)];
                facts.push((id, WRel::CityIn, country));
                facts.push((id, WRel::TypeOf, concept_of[&EntityKind::Settlement]));
                id
            })
            .collect();

        // country of a settlement (for consistent nationality)
        let country_of_settlement: std::collections::HashMap<usize, usize> =
            facts.iter().filter(|&&(_, r, _)| r == WRel::CityIn).map(|&(s, _, c)| (s, c)).collect();

        // --- clubs ---
        let clubs: Vec<usize> = (0..n_clubs)
            .map(|_| {
                let id = entities.len();
                let mut name = vec![*rng.choose(&club_prefix_pool)];
                name.extend(fresh_words(1, &mut next_word));
                let props =
                    vec![(PropKind::Founded, PropValue::Year(rng.range(1850, 2000) as i32))];
                entities.push(WEntity { kind: EntityKind::Club, name, concept: None, props });
                let s = settlements[rng.zipf(settlements.len(), 1.05)];
                facts.push((id, WRel::LocatedIn, s));
                facts.push((id, WRel::TypeOf, concept_of[&EntityKind::Club]));
                id
            })
            .collect();

        // --- universities ---
        let universities: Vec<usize> = (0..n_universities)
            .map(|_| {
                let id = entities.len();
                let name = fresh_words(2, &mut next_word);
                let props =
                    vec![(PropKind::Established, PropValue::Year(rng.range(1200, 1990) as i32))];
                entities.push(WEntity { kind: EntityKind::University, name, concept: None, props });
                let s = settlements[rng.below(settlements.len())];
                facts.push((id, WRel::UnivIn, s));
                facts.push((id, WRel::TypeOf, concept_of[&EntityKind::University]));
                id
            })
            .collect();

        // --- persons ---
        let persons: Vec<usize> = (0..n_persons)
            .map(|_| {
                let id = entities.len();
                let name = vec![*rng.choose(&given_pool), *rng.choose(&family_pool)];
                let props = vec![
                    (
                        PropKind::BirthDate,
                        PropValue::Date {
                            y: rng.range(1850, 2005) as i32,
                            m: rng.range(1, 13) as u32,
                            d: rng.range(1, 29) as u32,
                        },
                    ),
                    (PropKind::Height, PropValue::Float(rng.uniform(150.0, 210.0) as f64)),
                ];
                entities.push(WEntity { kind: EntityKind::Person, name, concept: None, props });
                facts.push((id, WRel::TypeOf, concept_of[&EntityKind::Person]));
                let birth = settlements[rng.zipf(settlements.len(), 1.05)];
                facts.push((id, WRel::BornIn, birth));
                let nat = if rng.chance(0.9) {
                    country_of_settlement[&birth]
                } else {
                    countries[rng.below(countries.len())]
                };
                facts.push((id, WRel::Nationality, nat));
                // 70% are "athletes" with clubs
                if rng.chance(0.7) {
                    let n_clubs_for = 1 + rng.below(3);
                    let picks = rng.sample_indices(clubs.len(), n_clubs_for.min(clubs.len()));
                    for p in picks {
                        facts.push((id, WRel::PlaysFor, clubs[p]));
                    }
                }
                if rng.chance(0.35) {
                    facts.push((id, WRel::AlmaMater, universities[rng.below(universities.len())]));
                }
                id
            })
            .collect();

        // spouses among persons
        for i in 0..persons.len() / 10 {
            let a = persons[i * 2 % persons.len()];
            let b = persons[(i * 2 + 1) % persons.len()];
            if a != b {
                facts.push((a, WRel::Spouse, b));
            }
        }

        // --- works ---
        for _ in 0..n_works {
            let id = entities.len();
            let nw = 2 + rng.below(2);
            let name: Vec<WordId> = (0..nw).map(|_| *rng.choose(&noun_pool)).collect();
            let props =
                vec![(PropKind::ReleaseYear, PropValue::Year(rng.range(1900, 2022) as i32))];
            entities.push(WEntity { kind: EntityKind::Work, name, concept: None, props });
            facts.push((id, WRel::CreatedBy, persons[rng.zipf(persons.len(), 1.02)]));
            facts.push((id, WRel::TypeOf, concept_of[&EntityKind::Work]));
        }

        let mut fact_index = vec![Vec::new(); entities.len()];
        for (i, &(s, _, _)) in facts.iter().enumerate() {
            fact_index[s].push(i);
        }
        World { entities, facts, fact_index }
    }

    /// Number of entities (including concepts).
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the world is empty (never true after generation).
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Facts with `e` as subject.
    pub fn facts_of(&self, e: usize) -> impl Iterator<Item = &(usize, WRel, usize)> {
        self.fact_index[e].iter().map(move |&i| &self.facts[i])
    }

    /// Ids of all alignable (non-concept) entities.
    pub fn alignable(&self) -> Vec<usize> {
        (0..self.entities.len()).filter(|&i| self.entities[i].kind != EntityKind::Concept).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig { n_core: 300, seed: 7 })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig { n_core: 100, seed: 1 });
        let b = World::generate(WorldConfig { n_core: 100, seed: 1 });
        assert_eq!(a.len(), b.len());
        assert_eq!(a.facts, b.facts);
    }

    #[test]
    fn core_size_approximately_respected() {
        let w = world();
        let alignable = w.alignable().len();
        assert!((250..=360).contains(&alignable), "requested ~300 alignable, got {alignable}");
    }

    #[test]
    fn all_fact_endpoints_valid() {
        let w = world();
        for &(s, _, o) in &w.facts {
            assert!(s < w.len() && o < w.len());
        }
    }

    #[test]
    fn relations_respect_type_signatures() {
        let w = world();
        for &(s, r, o) in &w.facts {
            let (sk, ok) = (w.entities[s].kind, w.entities[o].kind);
            match r {
                WRel::BornIn => assert_eq!((sk, ok), (EntityKind::Person, EntityKind::Settlement)),
                WRel::Nationality => {
                    assert_eq!((sk, ok), (EntityKind::Person, EntityKind::Country))
                }
                WRel::PlaysFor => assert_eq!((sk, ok), (EntityKind::Person, EntityKind::Club)),
                WRel::LocatedIn => assert_eq!((sk, ok), (EntityKind::Club, EntityKind::Settlement)),
                WRel::CityIn => assert_eq!((sk, ok), (EntityKind::Settlement, EntityKind::Country)),
                WRel::AlmaMater => {
                    assert_eq!((sk, ok), (EntityKind::Person, EntityKind::University))
                }
                WRel::UnivIn => {
                    assert_eq!((sk, ok), (EntityKind::University, EntityKind::Settlement))
                }
                WRel::CreatedBy => assert_eq!((sk, ok), (EntityKind::Work, EntityKind::Person)),
                WRel::TypeOf => assert_eq!(ok, EntityKind::Concept),
                WRel::Spouse => assert_eq!((sk, ok), (EntityKind::Person, EntityKind::Person)),
            }
        }
    }

    #[test]
    fn concepts_are_hubs() {
        let w = world();
        // incoming degree of concepts must dominate
        let mut indeg = vec![0usize; w.len()];
        for &(_, _, o) in &w.facts {
            indeg[o] += 1;
        }
        let person_concept =
            (0..w.len()).find(|&i| w.entities[i].concept == Some(TWord::PersonTw)).unwrap();
        let max_other = (0..w.len())
            .filter(|&i| {
                w.entities[i].kind != EntityKind::Concept
                    && w.entities[i].kind != EntityKind::Country
            })
            .map(|i| indeg[i])
            .max()
            .unwrap();
        assert!(
            indeg[person_concept] > max_other,
            "person concept in-degree {} should exceed any specific entity's {}",
            indeg[person_concept],
            max_other
        );
    }

    #[test]
    fn persons_have_birth_props() {
        let w = world();
        for e in &w.entities {
            if e.kind == EntityKind::Person {
                assert!(e.props.iter().any(|(k, _)| *k == PropKind::BirthDate));
                assert!(!e.name.is_empty());
            }
        }
    }

    #[test]
    fn nationality_mostly_matches_birth_country() {
        let w = world();
        let mut consistent = 0usize;
        let mut total = 0usize;
        let cos: std::collections::HashMap<usize, usize> = w
            .facts
            .iter()
            .filter(|&&(_, r, _)| r == WRel::CityIn)
            .map(|&(s, _, c)| (s, c))
            .collect();
        for i in 0..w.len() {
            let born = w.facts_of(i).find(|&&(_, r, _)| r == WRel::BornIn).map(|&(_, _, o)| o);
            let nat = w.facts_of(i).find(|&&(_, r, _)| r == WRel::Nationality).map(|&(_, _, o)| o);
            if let (Some(b), Some(n)) = (born, nat) {
                total += 1;
                if cos[&b] == n {
                    consistent += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(consistent as f64 / total as f64 > 0.8);
    }
}
