//! # sdea-synth
//!
//! Synthetic benchmark generator emulating the three benchmarks of the SDEA
//! paper — DBP15K, SRPRS and OpenEA — at CPU-friendly scale.
//!
//! The real benchmarks are extractions of DBpedia/Wikidata/YAGO joined by
//! inter-language links; they are not redistributable here and the paper's
//! pre-trained multilingual BERT is far beyond laptop training. Instead we
//! sample a **ground-truth world** of typed entities (people, clubs,
//! settlements, countries, universities, works) with relations and typed
//! properties ([`world`]), render it into two heterogeneous KGs per dataset
//! ([`derive`]) with per-benchmark statistical profiles ([`profiles`]):
//!
//! * **surface-form divergence** — pseudo-language word ciphers for ZH/JA
//!   sides, near-literal mutations for FR/DE, opaque `Q…` ids for the
//!   Wikidata side of OpenEA D-W ([`language`]);
//! * **schema heterogeneity** — disjoint attribute-name dialects and
//!   value-format differences (date formats, unit/precision changes);
//! * **relation sparsity and long tails** — per-benchmark triple sampling
//!   matched to the degree buckets of the paper's Table VI;
//! * **long-text comments** that verbalize relational facts, carrying the
//!   *direct* and *indirect* associations of the paper's Section II-B2;
//! * general-concept hub entities (`person`, `club`, …) that contribute
//!   noise, motivating the paper's neighbour-attention design.
//!
//! [`corpus`] builds the masked-LM pre-training corpus that stands in for
//! BERT's pre-training data.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod derive;
pub mod language;
pub mod names;
pub mod profiles;
pub mod world;

pub use derive::{DerivationSpec, GeneratedKg};
pub use language::Lang;
pub use names::WordBank;
pub use profiles::{generate, BenchmarkFamily, DatasetProfile, GeneratedDataset};
pub use world::{EntityKind, PropKind, World, WorldConfig};
