//! Rendering languages, template lexicons and value formats.

use crate::names::{WordBank, WordId};

/// The language/identifier scheme a KG side renders its literals in.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Lang {
    /// English-like base forms.
    En,
    /// Near-literal mutation of English (high string overlap).
    Fr,
    /// Near-literal mutation of English (high string overlap).
    De,
    /// Keyed cipher (no string overlap with English).
    Zh,
    /// Keyed cipher (no string overlap with English), different key than Zh.
    Ja,
    /// Wikidata mode: entity names are opaque `Q…` ids; other literals
    /// render as English.
    WdId,
}

impl Lang {
    /// Whether entity names in this language share string material with
    /// English (drives which baselines can exploit names).
    pub fn literal_alignable(self) -> bool {
        matches!(self, Lang::En | Lang::Fr | Lang::De)
    }
}

/// Fixed template vocabulary. These render through the same word machinery
/// so cipher languages get ciphered function words too.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TWord {
    Is,
    A,
    The,
    BornTw,
    In,
    PlaysFor,
    ClubTw,
    CityTw,
    CountryTw,
    FoundedTw,
    LocatedTw,
    StudiedAt,
    CreatedBy,
    PersonTw,
    FromTw,
    And,
    UniversityTw,
    WorkTw,
    YearTw,
}

/// Template words occupy a reserved id range far above name words.
const TWORD_BASE: u32 = 1_000_000;

impl TWord {
    fn index(self) -> u32 {
        self as u32
    }

    /// English surface of the template word.
    fn en(self) -> &'static str {
        match self {
            TWord::Is => "is",
            TWord::A => "a",
            TWord::The => "the",
            TWord::BornTw => "born",
            TWord::In => "in",
            TWord::PlaysFor => "plays for",
            TWord::ClubTw => "club",
            TWord::CityTw => "city",
            TWord::CountryTw => "country",
            TWord::FoundedTw => "founded",
            TWord::LocatedTw => "located",
            TWord::StudiedAt => "studied at",
            TWord::CreatedBy => "created by",
            TWord::PersonTw => "person",
            TWord::FromTw => "from",
            TWord::And => "and",
            TWord::UniversityTw => "university",
            TWord::WorkTw => "work",
            TWord::YearTw => "year",
        }
    }
}

/// Renders template words and values in a language.
#[derive(Clone, Debug, Default)]
pub struct Lexicon {
    bank: WordBank,
}

impl Lexicon {
    /// A lexicon over the shared word bank.
    pub fn new() -> Self {
        Lexicon { bank: WordBank::new() }
    }

    /// The underlying word bank.
    pub fn bank(&self) -> &WordBank {
        &self.bank
    }

    /// Surface of a template word. English-family languages keep the real
    /// English function words (FR/DE KGs in the benchmarks contain mostly
    /// cognate-free function words too, but their *names* are what matters);
    /// cipher languages get ciphered forms.
    pub fn tword(&self, w: TWord, lang: Lang) -> String {
        match lang {
            Lang::En | Lang::WdId => w.en().to_string(),
            Lang::Fr | Lang::De | Lang::Zh | Lang::Ja => {
                // Multi-word English templates cipher word-by-word.
                w.en()
                    .split(' ')
                    .enumerate()
                    .map(|(i, _)| {
                        self.bank.surface(WordId(TWORD_BASE + w.index() * 4 + i as u32), lang)
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        }
    }
}

/// How a KG side formats structured values — one axis of schema
/// heterogeneity. Dates and numbers share digit tokens across formats
/// (anchors a language model can exploit) but are not string-identical.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValueFormat {
    /// `1985-02-05`, heights in centimetres, exact populations.
    IsoCm,
    /// `05.02.1985`, heights in metres, populations rounded to 1000.
    DottedMetric,
}

impl ValueFormat {
    /// Renders a date.
    pub fn date(&self, y: i32, m: u32, d: u32) -> String {
        match self {
            ValueFormat::IsoCm => format!("{y:04}-{m:02}-{d:02}"),
            ValueFormat::DottedMetric => format!("{d:02}.{m:02}.{y:04}"),
        }
    }

    /// Renders a height given centimetres.
    pub fn height_cm(&self, cm: f64) -> String {
        match self {
            ValueFormat::IsoCm => format!("{}", cm.round() as i64),
            ValueFormat::DottedMetric => format!("{:.2}", cm / 100.0),
        }
    }

    /// Renders a population count.
    pub fn population(&self, p: i64) -> String {
        match self {
            ValueFormat::IsoCm => p.to_string(),
            ValueFormat::DottedMetric => ((p + 500) / 1000 * 1000).to_string(),
        }
    }

    /// Renders a plain year.
    pub fn year(&self, y: i32) -> String {
        y.to_string()
    }

    /// Renders an area in km².
    pub fn area(&self, a: f64) -> String {
        match self {
            ValueFormat::IsoCm => format!("{a:.1}"),
            ValueFormat::DottedMetric => format!("{}", a.round() as i64),
        }
    }
}

/// Attribute-name dialects — the second axis of schema heterogeneity.
/// The two sides of every generated dataset use different dialects, so no
/// attribute name ever matches across KGs (the paper: "more often than not,
/// the to-be-aligned entity pairs do not have matching attributes").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SchemaDialect {
    /// DBpedia-flavoured names.
    Dbp,
    /// Wikidata/YAGO-flavoured names.
    Alt,
}

impl SchemaDialect {
    /// The attribute name for a property in this dialect.
    pub fn attr_name(&self, prop: crate::world::PropKind) -> &'static str {
        use crate::world::PropKind::*;
        match (self, prop) {
            (SchemaDialect::Dbp, Name) => "name",
            (SchemaDialect::Alt, Name) => "label",
            (SchemaDialect::Dbp, BirthDate) => "birthDate",
            (SchemaDialect::Alt, BirthDate) => "dateOfBirth",
            (SchemaDialect::Dbp, Height) => "height",
            (SchemaDialect::Alt, Height) => "heightValue",
            (SchemaDialect::Dbp, Founded) => "founded",
            (SchemaDialect::Alt, Founded) => "foundingYear",
            (SchemaDialect::Dbp, Population) => "population",
            (SchemaDialect::Alt, Population) => "populationTotal",
            (SchemaDialect::Dbp, Elevation) => "elevation",
            (SchemaDialect::Alt, Elevation) => "altitude",
            (SchemaDialect::Dbp, Area) => "areaKm2",
            (SchemaDialect::Alt, Area) => "areaTotal",
            (SchemaDialect::Dbp, Established) => "established",
            (SchemaDialect::Alt, Established) => "yearEstablished",
            (SchemaDialect::Dbp, ReleaseYear) => "releaseYear",
            (SchemaDialect::Alt, ReleaseYear) => "published",
            (SchemaDialect::Dbp, Comment) => "comment",
            (SchemaDialect::Alt, Comment) => "abstract",
        }
    }

    /// The relation name for a world relation in this dialect.
    pub fn rel_name(&self, rel: crate::world::WRel) -> &'static str {
        use crate::world::WRel::*;
        match (self, rel) {
            (SchemaDialect::Dbp, BornIn) => "birthPlace",
            (SchemaDialect::Alt, BornIn) => "placeOfBirth",
            (SchemaDialect::Dbp, Nationality) => "nationality",
            (SchemaDialect::Alt, Nationality) => "countryOfCitizenship",
            (SchemaDialect::Dbp, PlaysFor) => "team",
            (SchemaDialect::Alt, PlaysFor) => "memberOfSportsTeam",
            (SchemaDialect::Dbp, LocatedIn) => "ground",
            (SchemaDialect::Alt, LocatedIn) => "headquartersLocation",
            (SchemaDialect::Dbp, CityIn) => "country",
            (SchemaDialect::Alt, CityIn) => "locatedInCountry",
            (SchemaDialect::Dbp, AlmaMater) => "almaMater",
            (SchemaDialect::Alt, AlmaMater) => "educatedAt",
            (SchemaDialect::Dbp, UnivIn) => "campus",
            (SchemaDialect::Alt, UnivIn) => "campusLocation",
            (SchemaDialect::Dbp, CreatedBy) => "author",
            (SchemaDialect::Alt, CreatedBy) => "creator",
            (SchemaDialect::Dbp, TypeOf) => "type",
            (SchemaDialect::Alt, TypeOf) => "instanceOf",
            (SchemaDialect::Dbp, Spouse) => "spouse",
            (SchemaDialect::Alt, Spouse) => "marriedTo",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{PropKind, WRel};

    #[test]
    fn value_formats_share_digit_anchors() {
        let a = ValueFormat::IsoCm.date(1985, 2, 5);
        let b = ValueFormat::DottedMetric.date(1985, 2, 5);
        assert_ne!(a, b);
        assert!(a.contains("1985") && b.contains("1985"), "year anchor shared");
    }

    #[test]
    fn heights_differ_by_unit() {
        assert_eq!(ValueFormat::IsoCm.height_cm(185.0), "185");
        assert_eq!(ValueFormat::DottedMetric.height_cm(185.0), "1.85");
    }

    #[test]
    fn population_rounding() {
        assert_eq!(ValueFormat::IsoCm.population(123_456), "123456");
        assert_eq!(ValueFormat::DottedMetric.population(123_456), "123000");
    }

    #[test]
    fn dialects_never_share_attr_names() {
        use PropKind::*;
        for p in [
            Name,
            BirthDate,
            Height,
            Founded,
            Population,
            Elevation,
            Area,
            Established,
            ReleaseYear,
            Comment,
        ] {
            assert_ne!(SchemaDialect::Dbp.attr_name(p), SchemaDialect::Alt.attr_name(p), "{p:?}");
        }
    }

    #[test]
    fn dialects_never_share_rel_names() {
        use WRel::*;
        for r in [
            BornIn,
            Nationality,
            PlaysFor,
            LocatedIn,
            CityIn,
            AlmaMater,
            UnivIn,
            CreatedBy,
            TypeOf,
            Spouse,
        ] {
            assert_ne!(SchemaDialect::Dbp.rel_name(r), SchemaDialect::Alt.rel_name(r), "{r:?}");
        }
    }

    #[test]
    fn template_words_cipher_per_language() {
        let lex = Lexicon::new();
        assert_eq!(lex.tword(TWord::BornTw, Lang::En), "born");
        let zh = lex.tword(TWord::BornTw, Lang::Zh);
        assert_ne!(zh, "born");
        assert_eq!(lex.tword(TWord::BornTw, Lang::Zh), zh, "deterministic");
        assert_ne!(lex.tword(TWord::BornTw, Lang::Ja), zh, "keys differ");
    }

    #[test]
    fn multiword_templates_have_same_arity() {
        let lex = Lexicon::new();
        let en = lex.tword(TWord::PlaysFor, Lang::En);
        let zh = lex.tword(TWord::PlaysFor, Lang::Zh);
        assert_eq!(en.split(' ').count(), zh.split(' ').count());
    }

    #[test]
    fn literal_alignability_flags() {
        assert!(Lang::En.literal_alignable());
        assert!(Lang::Fr.literal_alignable());
        assert!(!Lang::Zh.literal_alignable());
        assert!(!Lang::WdId.literal_alignable());
    }
}
