//! Masked-LM pre-training corpus construction.
//!
//! The paper starts from a BERT checkpoint pre-trained on large unlabeled
//! text. The equivalent here: every attribute value of *both* KGs becomes a
//! pre-training sentence (comments are split into sentences). No alignment
//! information is used — like real LM pre-training, the corpus is unlabeled;
//! cross-lingual transfer comes only from shared anchors (digits, dates)
//! plus whatever fine-tuning later learns from seeds.

use crate::profiles::GeneratedDataset;
use sdea_kg::KnowledgeGraph;

/// Collects pre-training sentences from one KG: each attribute value, with
/// long comments split on sentence separators.
pub fn kg_sentences(kg: &KnowledgeGraph) -> Vec<String> {
    let mut out = Vec::with_capacity(kg.attr_triples().len());
    for t in kg.attr_triples() {
        let v = t.value.trim();
        if v.is_empty() {
            continue;
        }
        if v.contains(" . ") {
            for s in v.split(" . ") {
                let s = s.trim();
                if !s.is_empty() {
                    out.push(s.to_string());
                }
            }
        } else {
            out.push(v.to_string());
        }
    }
    out
}

/// Builds the full pre-training corpus for a dataset (both sides, plus
/// entity names so name tokens are in-vocabulary).
pub fn dataset_corpus(ds: &GeneratedDataset) -> Vec<String> {
    let mut corpus = kg_sentences(ds.kg1());
    corpus.extend(kg_sentences(ds.kg2()));
    for e in ds.kg1().entities() {
        corpus.push(ds.kg1().entity_name(e).replace('_', " "));
    }
    for e in ds.kg2().entities() {
        corpus.push(ds.kg2().entity_name(e).replace('_', " "));
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{generate, DatasetProfile};

    #[test]
    fn corpus_covers_both_sides() {
        let ds = generate(&DatasetProfile::dbp15k_zh_en(100, 3));
        let corpus = dataset_corpus(&ds);
        assert!(corpus.len() > ds.kg1().attr_triples().len());
        assert!(corpus.iter().all(|s| !s.trim().is_empty()));
    }

    #[test]
    fn comments_are_split_into_sentences() {
        let ds = generate(&DatasetProfile::dbp15k_fr_en(100, 5));
        let sentences = kg_sentences(ds.kg1());
        // No sentence should still contain the separator.
        assert!(sentences.iter().all(|s| !s.contains(" . ")));
    }

    #[test]
    fn corpus_is_deterministic() {
        let p = DatasetProfile::srprs_en_de(80, 7);
        let a = dataset_corpus(&generate(&p));
        let b = dataset_corpus(&generate(&p));
        assert_eq!(a, b);
    }
}
