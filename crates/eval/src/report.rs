//! Paper-style result table formatting.

use crate::metrics::AlignmentMetrics;

/// One method's results on one or more datasets.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Method name as printed in the paper.
    pub method: String,
    /// Metrics per dataset column; `None` renders as `--` (the paper leaves
    /// H@10/MRR blank for CEA's stable-matching variant).
    pub cells: Vec<Option<AlignmentMetrics>>,
}

impl TableRow {
    /// A row with metrics for every dataset.
    pub fn full(method: impl Into<String>, cells: Vec<AlignmentMetrics>) -> Self {
        TableRow { method: method.into(), cells: cells.into_iter().map(Some).collect() }
    }
}

/// Renders rows in the layout of the paper's Tables III–V:
/// one `H@1 H@10 MRR` triple per dataset.
pub fn format_table(title: &str, datasets: &[&str], rows: &[TableRow]) -> String {
    let method_w = rows
        .iter()
        .map(|r| r.method.len())
        .chain(std::iter::once("Method".len()))
        .max()
        .unwrap_or(8)
        + 2;
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!("{:<method_w$}", "Method"));
    for d in datasets {
        out.push_str(&format!("| {:^18} ", d));
    }
    out.push('\n');
    out.push_str(&format!("{:<method_w$}", ""));
    for _ in datasets {
        out.push_str(&format!("| {:>5} {:>5} {:>5} ", "H@1", "H@10", "MRR"));
    }
    out.push('\n');
    let total_w = method_w + datasets.len() * 21;
    out.push_str(&"-".repeat(total_w));
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<method_w$}", row.method));
        for cell in &row.cells {
            match cell {
                Some(m) => {
                    let fmt = |v: f64, scale: f64, decimals: usize| {
                        if v.is_nan() {
                            format!("{:>5}", "--")
                        } else {
                            format!("{:>5.*}", decimals, v * scale)
                        }
                    };
                    out.push_str(&format!(
                        "| {} {} {} ",
                        fmt(m.hits1, 100.0, 1),
                        fmt(m.hits10, 100.0, 1),
                        fmt(m.mrr, 1.0, 2)
                    ));
                }
                None => out.push_str(&format!("| {:>5} {:>5} {:>5} ", "--", "--", "--")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a `paper vs measured` comparison line for EXPERIMENTS.md.
pub fn paper_vs_measured(
    method: &str,
    dataset: &str,
    paper_h1: Option<f64>,
    measured: &AlignmentMetrics,
) -> String {
    match paper_h1 {
        Some(p) => format!(
            "{method} on {dataset}: paper H@1 {:.1}%, measured H@1 {:.1}% (H@10 {:.1}%, MRR {:.2})",
            p,
            measured.hits1 * 100.0,
            measured.hits10 * 100.0,
            measured.mrr
        ),
        None => format!(
            "{method} on {dataset}: measured H@1 {:.1}% (H@10 {:.1}%, MRR {:.2})",
            measured.hits1 * 100.0,
            measured.hits10 * 100.0,
            measured.mrr
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(h1: f64) -> AlignmentMetrics {
        AlignmentMetrics { hits1: h1, hits10: (h1 + 0.1).min(1.0), mrr: h1 + 0.02 }
    }

    #[test]
    fn table_contains_all_methods_and_datasets() {
        let rows = vec![
            TableRow::full("SDEA", vec![m(0.87), m(0.848)]),
            TableRow { method: "CEA".into(), cells: vec![Some(m(0.787)), None] },
        ];
        let table = format_table("DBP15K", &["ZH-EN", "JA-EN"], &rows);
        assert!(table.contains("SDEA"));
        assert!(table.contains("CEA"));
        assert!(table.contains("ZH-EN"));
        assert!(table.contains("87.0"));
        assert!(table.contains("--"), "missing cells render as --");
    }

    #[test]
    fn rows_align() {
        let rows =
            vec![TableRow::full("A", vec![m(0.5)]), TableRow::full("LongMethodName", vec![m(0.6)])];
        let table = format_table("t", &["d"], &rows);
        let lines: Vec<&str> = table.lines().collect();
        // lines: 0 title, 1 header, 2 metric header, 3 separator, 4.. data
        let pipe_cols: Vec<usize> =
            lines[4..].iter().map(|l| l.find('|').expect("data rows have pipes")).collect();
        assert!(pipe_cols.windows(2).all(|w| w[0] == w[1]), "columns must align");
    }

    #[test]
    fn paper_vs_measured_formats() {
        let s = paper_vs_measured("SDEA", "ZH-EN", Some(87.0), &m(0.85));
        assert!(s.contains("paper H@1 87.0%"));
        assert!(s.contains("measured H@1 85.0%"));
    }
}
