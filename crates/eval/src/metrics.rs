//! Hits@K and MRR over similarity rankings (paper Section V-A2).
//!
//! Two evaluation families live here. The *materialized* path
//! ([`evaluate_ranking`]) scores a pre-computed `n × m` similarity matrix.
//! The *blocked* path ([`evaluate_ranking_blocked`],
//! [`evaluate_retrieved_blocked`], [`evaluate_ranking_shards`]) walks the
//! queries in bounded row blocks so only one `block × m` (or `block ×
//! shard`) slab is ever resident — the full matrix never exists. Both
//! families rank every row with the same [`rank_of`] tie rule and
//! accumulate metrics serially in global row order through [`RankAccum`],
//! so the blocked results are **bit-identical** to the materialized ones at
//! any block size and any `SDEA_THREADS` budget.

use crate::similarity::{desc_nan_last, SimilarityMatrix};
use sdea_index::Retriever;
use sdea_tensor::{EmbeddingShards, Tensor};
use std::cmp::Ordering;

/// The paper's three reported metrics.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct AlignmentMetrics {
    /// Hits@1 in `[0,1]`.
    pub hits1: f64,
    /// Hits@10 in `[0,1]`.
    pub hits10: f64,
    /// Mean reciprocal rank in `(0,1]`.
    pub mrr: f64,
}

impl AlignmentMetrics {
    /// Formats as the paper's percentage row `H@1 H@10 MRR`.
    pub fn paper_row(&self) -> String {
        format!("{:5.1} {:5.1} {:.2}", self.hits1 * 100.0, self.hits10 * 100.0, self.mrr)
    }
}

/// Serial metric accumulator shared by every evaluation path. Ranks are
/// integers, so the only floating-point state is the MRR sum; pushing ranks
/// one at a time in global row order makes a blocked evaluation reproduce
/// the one-shot f64 addition sequence exactly — that is what buys bitwise
/// equality between the materialized and blocked paths.
#[derive(Default)]
pub(crate) struct RankAccum {
    rows: usize,
    h1: usize,
    h10: usize,
    mrr: f64,
}

impl RankAccum {
    pub(crate) fn push(&mut self, rank: usize) {
        self.rows += 1;
        if rank == 1 {
            self.h1 += 1;
        }
        if rank <= 10 {
            self.h10 += 1;
        }
        self.mrr += 1.0 / rank as f64;
    }

    pub(crate) fn finish(self) -> AlignmentMetrics {
        let n = self.rows.max(1) as f64;
        AlignmentMetrics {
            hits1: self.h1 as f64 / n,
            hits10: self.h10 as f64 / n,
            mrr: self.mrr / n,
        }
    }
}

/// 1-based rank of `gold` within `scores` (descending). Ties are broken
/// pessimistically for indices before `gold` and optimistically after —
/// i.e. rank = 1 + |{j : s_j ranks before s_gold}| + |{j < gold : s_j ==
/// s_gold}|, which is deterministic and matches a stable descending sort
/// under [`desc_nan_last`].
///
/// NaN scores follow the crate-wide convention: they rank *last*. A NaN
/// gold therefore ranks behind every real candidate (it used to silently
/// rank 1 because `NaN > NaN` and `s > NaN` are both false), and a NaN
/// candidate never outranks a real gold.
///
/// Panics with a descriptive message when `gold` is out of range — in
/// particular for an empty `scores` slice (a zero-column similarity
/// matrix), where no rank exists.
pub fn rank_of(scores: &[f32], gold: usize) -> usize {
    assert!(
        gold < scores.len(),
        "rank_of: gold index {gold} out of range for {} candidate scores",
        scores.len()
    );
    let g = scores[gold];
    let mut rank = 1usize;
    for (j, &s) in scores.iter().enumerate() {
        match desc_nan_last(s, g) {
            Ordering::Less => rank += 1,
            Ordering::Equal if j < gold => rank += 1,
            _ => {}
        }
    }
    rank
}

/// Evaluates a similarity matrix against gold targets: `gold[i]` is the
/// column index of source row `i`'s true match.
///
/// Panics with a descriptive message when any gold column is out of range;
/// a zero-column matrix is therefore rejected up front unless `gold` is
/// empty (no rows to rank — all metrics are 0).
pub fn evaluate_ranking(sim: &SimilarityMatrix, gold: &[usize]) -> AlignmentMetrics {
    assert_eq!(sim.shape()[0], gold.len(), "one gold target per source row");
    let m = sim.shape()[1];
    // Validate on the calling thread: a failure inside a parallel worker
    // would surface as an opaque join panic instead of this message.
    for (i, &g) in gold.iter().enumerate() {
        assert!(g < m, "evaluate_ranking: gold[{i}] column {g} out of range for {m} targets");
    }
    let _span = sdea_obs::span("eval.evaluate_ranking");
    // Per-row ranks fan out across the thread budget; the f64 accumulation
    // below stays serial and in row order, so MRR is bit-stable.
    let ranks = sdea_tensor::par_map_collect(gold.len(), m.max(1), |i| {
        rank_of(&sim.data()[i * m..(i + 1) * m], gold[i])
    });
    let mut acc = RankAccum::default();
    for rank in ranks {
        acc.push(rank);
    }
    acc.finish()
}

/// Blocked form of the matrix evaluation: takes the *embeddings* rather
/// than a pre-computed similarity matrix, walks the source rows in
/// `block_rows`-high blocks (0 means one block), and scores each `block ×
/// m` cosine slab as it is produced — the full `n × m` matrix is never
/// materialized.
///
/// Bit-identical to `evaluate_ranking(&cosine_matrix(src, tgt), gold)` at
/// any block size and thread budget: row normalization and the `matmul_t`
/// kernel are per-row/per-element operations (a block row equals the
/// corresponding full-matrix row bitwise), [`rank_of`] is pure per row, and
/// [`RankAccum`] replays the same serial f64 additions in global row order.
pub fn evaluate_ranking_blocked(
    src: &Tensor,
    tgt: &Tensor,
    gold: &[usize],
    block_rows: usize,
) -> AlignmentMetrics {
    assert_eq!(src.rank(), 2, "evaluate_ranking_blocked expects rank-2 src");
    assert_eq!(tgt.rank(), 2, "evaluate_ranking_blocked expects rank-2 tgt");
    assert_eq!(src.shape()[1], tgt.shape()[1], "embedding width mismatch");
    assert_eq!(src.shape()[0], gold.len(), "one gold target per source row");
    let m = tgt.shape()[0];
    for (i, &g) in gold.iter().enumerate() {
        assert!(g < m, "evaluate_ranking: gold[{i}] column {g} out of range for {m} targets");
    }
    let _span = sdea_obs::span("eval.evaluate_ranking_blocked");
    let n = src.shape()[0];
    let block = if block_rows == 0 { n.max(1) } else { block_rows };
    // Normalize the target side once; each source block is normalized on
    // its own (row-wise, so block rows match the full-matrix rows bitwise).
    let tgt_n = tgt.normalized_view();
    let mut acc = RankAccum::default();
    let mut start = 0usize;
    while start < n {
        let end = (start + block).min(n);
        let sim_b = row_block(src, start, end).normalized_view().matmul_t(&tgt_n);
        sdea_obs::add("eval.cosine_cells", ((end - start) * m) as u64);
        let ranks = sdea_tensor::par_map_collect(end - start, m.max(1), |r| {
            rank_of(&sim_b.data()[r * m..(r + 1) * m], gold[start + r])
        });
        for rank in ranks {
            acc.push(rank);
        }
        start = end;
    }
    acc.finish()
}

/// Blocked matrix evaluation against a **sharded** target table: the target
/// embeddings stream in from an [`EmbeddingShards`] spill directory one
/// shard at a time, so neither the full target tensor nor the full `n × m`
/// similarity matrix is ever resident. Each query block's similarity slab
/// is assembled column-segment by column-segment (one segment per shard),
/// then ranked exactly like the other paths.
///
/// Bit-identical to `evaluate_ranking(&cosine_matrix(src, &tgt.to_tensor()?),
/// gold)` at any block size, shard height and thread budget, by the same
/// argument as [`evaluate_ranking_blocked`] — a shard's normalized rows
/// equal the full table's normalized rows, and every similarity cell is the
/// same `matmul_t` dot product either way.
pub fn evaluate_ranking_shards(
    src: &Tensor,
    tgt: &EmbeddingShards,
    gold: &[usize],
    block_rows: usize,
) -> std::io::Result<AlignmentMetrics> {
    assert_eq!(src.rank(), 2, "evaluate_ranking_shards expects rank-2 src");
    assert_eq!(src.shape()[1], tgt.dim(), "embedding width mismatch");
    assert_eq!(src.shape()[0], gold.len(), "one gold target per source row");
    let m = tgt.len();
    for (i, &g) in gold.iter().enumerate() {
        assert!(g < m, "evaluate_ranking: gold[{i}] column {g} out of range for {m} targets");
    }
    let _span = sdea_obs::span("eval.evaluate_ranking_shards");
    let n = src.shape()[0];
    let block = if block_rows == 0 { n.max(1) } else { block_rows };
    let mut acc = RankAccum::default();
    let mut start = 0usize;
    while start < n {
        let end = (start + block).min(n);
        let qb = end - start;
        let q_n = row_block(src, start, end).normalized_view();
        let mut slab = vec![0.0f32; qb * m];
        for s in 0..tgt.n_shards() {
            let (c0, c1) = tgt.shard_range(s);
            let w = c1 - c0;
            let cols = q_n.matmul_t(&tgt.read_shard(s)?.normalized_view());
            for r in 0..qb {
                slab[r * m + c0..r * m + c1].copy_from_slice(&cols.data()[r * w..(r + 1) * w]);
            }
        }
        sdea_obs::add("eval.cosine_cells", (qb * m) as u64);
        let ranks = sdea_tensor::par_map_collect(qb, m.max(1), |r| {
            rank_of(&slab[r * m..(r + 1) * m], gold[start + r])
        });
        for rank in ranks {
            acc.push(rank);
        }
        start = end;
    }
    Ok(acc.finish())
}

/// Copies rows `r0..r1` of a rank-2 tensor into a standalone block tensor.
pub(crate) fn row_block(t: &Tensor, r0: usize, r1: usize) -> Tensor {
    let d = t.shape()[1];
    Tensor::from_vec(t.data()[r0 * d..r1 * d].to_vec(), &[r1 - r0, d])
}

/// Evaluates alignment through a [`Retriever`] shortlist instead of a
/// materialized similarity matrix: `gold[i]` is the indexed row that is
/// query `i`'s true match.
///
/// The gold's rank is its 1-based position in the top-`k` hit list when it
/// appears there, else the lower bound `k + 1` (it lost to at least `k`
/// candidates). With an exact backend and `k = retr.len()` this is
/// bit-identical to [`evaluate_ranking`] over the full cosine matrix: the
/// hit list is a stable descending sort under [`desc_nan_last`] with ties
/// broken by lower index, exactly [`rank_of`]'s tie rule. With `k < len`
/// (or an approximate backend) Hits@1/Hits@10 are unchanged as long as
/// `k >= 10` and the shortlist recalls the gold; only the deep MRR tail is
/// approximated — `k + 1` under-states a miss's true rank, so the
/// truncated MRR upper-bounds the exact one.
pub fn evaluate_retrieved(
    retr: &dyn Retriever,
    queries: &Tensor,
    gold: &[usize],
    k: usize,
) -> AlignmentMetrics {
    assert_eq!(queries.rank(), 2, "evaluate_retrieved expects rank-2 queries");
    assert_eq!(queries.shape()[0], gold.len(), "one gold target per query row");
    let m = retr.len();
    for (i, &g) in gold.iter().enumerate() {
        assert!(g < m, "evaluate_retrieved: gold[{i}] row {g} out of range for {m} targets");
    }
    let _span = sdea_obs::span("eval.evaluate_retrieved");
    let hits = retr.search(queries, k);
    let mut acc = RankAccum::default();
    // Serial, in query order: MRR accumulation stays bit-stable.
    for (row, &g) in hits.iter().zip(gold) {
        acc.push(retrieved_rank(row, g, k));
    }
    acc.finish()
}

/// Rank of `gold` in a retriever hit list: its 1-based position when
/// present, else the lower bound `k + 1`.
fn retrieved_rank(row: &[(usize, f32)], gold: usize, k: usize) -> usize {
    match row.iter().position(|&(i, _)| i == gold) {
        Some(p) => p + 1,
        None => k + 1,
    }
}

/// Blocked form of [`evaluate_retrieved`]: the queries walk through the
/// retriever in `block_rows`-high blocks (0 means one block), so at most
/// one block's hit lists are resident at a time instead of all `n`.
///
/// Bit-identical to [`evaluate_retrieved`] at any block size for every
/// backend in this workspace: retriever search is a per-query-row
/// operation (normalization, probing and scoring of query `i` never look
/// at query `j`), so block composition cannot change any hit list, and
/// [`RankAccum`] replays the same serial accumulation in global row order.
pub fn evaluate_retrieved_blocked(
    retr: &dyn Retriever,
    queries: &Tensor,
    gold: &[usize],
    k: usize,
    block_rows: usize,
) -> AlignmentMetrics {
    assert_eq!(queries.rank(), 2, "evaluate_retrieved expects rank-2 queries");
    assert_eq!(queries.shape()[0], gold.len(), "one gold target per query row");
    let m = retr.len();
    for (i, &g) in gold.iter().enumerate() {
        assert!(g < m, "evaluate_retrieved: gold[{i}] row {g} out of range for {m} targets");
    }
    let _span = sdea_obs::span("eval.evaluate_retrieved_blocked");
    let n = queries.shape()[0];
    let block = if block_rows == 0 { n.max(1) } else { block_rows };
    let mut acc = RankAccum::default();
    let mut start = 0usize;
    while start < n {
        let end = (start + block).min(n);
        let hits = retr.search(&row_block(queries, start, end), k);
        for (row, &g) in hits.iter().zip(&gold[start..end]) {
            acc.push(retrieved_rank(row, g, k));
        }
        start = end;
    }
    acc.finish()
}

/// Per-block shortlist rescoring hook for
/// [`evaluate_retrieved_reranked_blocked`]: receives the block's global
/// starting query row and its `(target_row, score)` hit lists, returns the
/// rescored lists (same outer length).
pub type RescoreFn<'a> = dyn FnMut(usize, Vec<Vec<(usize, f32)>>) -> Vec<Vec<(usize, f32)>> + 'a;

/// Blocked retrieval evaluation with a second-stage rescoring pass: each
/// block's hit lists are handed to `rescore` (typically a cross-encoder
/// reranker — `sdea_core::CrossEncoder::rerank_hits` behind a closure; this
/// crate deliberately does not depend on `sdea-core`) together with the
/// global index of the block's first query, and the *returned* lists are
/// ranked. Like [`evaluate_retrieved_blocked`], only one block's hit lists
/// are ever resident, so the `n × m` matrix never materializes.
///
/// With the identity closure `|_, hits| hits` this is bit-identical to
/// [`evaluate_retrieved_blocked`] at any block size and thread budget
/// (pinned by a test below). A real rescorer must itself be per-row for the
/// block decomposition to stay exact — the cross-encoder's pair scores are.
pub fn evaluate_retrieved_reranked_blocked(
    retr: &dyn Retriever,
    queries: &Tensor,
    gold: &[usize],
    k: usize,
    block_rows: usize,
    rescore: &mut RescoreFn<'_>,
) -> AlignmentMetrics {
    assert_eq!(queries.rank(), 2, "evaluate_retrieved expects rank-2 queries");
    assert_eq!(queries.shape()[0], gold.len(), "one gold target per query row");
    let m = retr.len();
    for (i, &g) in gold.iter().enumerate() {
        assert!(g < m, "evaluate_retrieved: gold[{i}] row {g} out of range for {m} targets");
    }
    let _span = sdea_obs::span("eval.evaluate_retrieved_reranked_blocked");
    let n = queries.shape()[0];
    let block = if block_rows == 0 { n.max(1) } else { block_rows };
    let mut acc = RankAccum::default();
    let mut start = 0usize;
    while start < n {
        let end = (start + block).min(n);
        let hits = rescore(start, retr.search(&row_block(queries, start, end), k));
        assert_eq!(hits.len(), end - start, "rescore must keep one hit list per query");
        for (row, &g) in hits.iter().zip(&gold[start..end]) {
            acc.push(retrieved_rank(row, g, k));
        }
        start = end;
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_index::ExactRetriever;

    #[test]
    fn rank_of_basics() {
        assert_eq!(rank_of(&[0.9, 0.5, 0.1], 0), 1);
        assert_eq!(rank_of(&[0.9, 0.5, 0.1], 1), 2);
        assert_eq!(rank_of(&[0.9, 0.5, 0.1], 2), 3);
    }

    #[test]
    fn rank_of_ties_are_stable() {
        // Equal scores: earlier index wins.
        assert_eq!(rank_of(&[0.5, 0.5], 0), 1);
        assert_eq!(rank_of(&[0.5, 0.5], 1), 2);
    }

    #[test]
    fn perfect_ranking_gives_ones() {
        let sim = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let m = evaluate_ranking(&sim, &[0, 1, 2]);
        assert_eq!(m.hits1, 1.0);
        assert_eq!(m.hits10, 1.0);
        assert_eq!(m.mrr, 1.0);
    }

    #[test]
    fn worst_ranking_metrics() {
        // gold always last of 12 candidates -> rank 12 (> 10)
        let mut data = vec![0.0f32; 12];
        data[..11].iter_mut().enumerate().for_each(|(i, v)| *v = 1.0 + i as f32);
        data[11] = -1.0;
        let sim = Tensor::from_vec(data, &[1, 12]);
        let m = evaluate_ranking(&sim, &[11]);
        assert_eq!(m.hits1, 0.0);
        assert_eq!(m.hits10, 0.0);
        assert!((m.mrr - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn hits1_le_hits10_and_mrr_bounds() {
        // random-ish matrix
        let data: Vec<f32> = (0..50).map(|i| ((i * 37 % 17) as f32).sin()).collect();
        let sim = Tensor::from_vec(data, &[5, 10]);
        let m = evaluate_ranking(&sim, &[3, 1, 4, 0, 9]);
        assert!(m.hits1 <= m.hits10);
        assert!(m.mrr > 0.0 && m.mrr <= 1.0);
        assert!(m.hits1 <= m.mrr + 1e-12, "MRR >= Hits@1 always");
    }

    #[test]
    fn zero_column_matrix_with_no_rows_scores_zero() {
        // Degenerate but valid: nothing to rank, all metrics are 0.
        let sim = Tensor::zeros(&[0, 0]);
        let m = evaluate_ranking(&sim, &[]);
        assert_eq!(m, AlignmentMetrics::default());
    }

    #[test]
    #[should_panic(expected = "gold[0] column 0 out of range for 0 targets")]
    fn zero_column_matrix_with_rows_panics_cleanly() {
        // One source row but no target columns: the gold can never be
        // ranked. Must fail with a descriptive message on the calling
        // thread, not an index panic inside a parallel worker.
        let sim = Tensor::zeros(&[1, 0]);
        evaluate_ranking(&sim, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range for 3 targets")]
    fn out_of_range_gold_panics_cleanly() {
        let sim = Tensor::zeros(&[1, 3]);
        evaluate_ranking(&sim, &[3]);
    }

    #[test]
    #[should_panic(expected = "rank_of: gold index 0 out of range for 0 candidate scores")]
    fn rank_of_empty_scores_panics_cleanly() {
        rank_of(&[], 0);
    }

    #[test]
    fn nan_gold_ranks_last_not_first() {
        // Regression: a NaN gold used to rank 1 because no score compares
        // greater than NaN. Under the NaN-last convention it ranks behind
        // every real candidate.
        assert_eq!(rank_of(&[0.9, f32::NAN, 0.1], 1), 3);
        // NaN candidates never outrank a real gold.
        assert_eq!(rank_of(&[f32::NAN, 0.5, f32::NAN], 1), 1);
        // NaN gold among NaN candidates: index tie-break.
        assert_eq!(rank_of(&[f32::NAN, f32::NAN], 1), 2);
    }

    #[test]
    fn evaluate_ranking_with_nan_rows_never_panics() {
        // Row 0: gold is NaN -> worst rank (3). Row 1: gold real, a NaN
        // competitor is ignored -> rank 1.
        let sim = Tensor::from_vec(vec![0.9, f32::NAN, 0.1, f32::NAN, 0.8, 0.2], &[2, 3]);
        let m = evaluate_ranking(&sim, &[1, 1]);
        assert!((m.hits1 - 0.5).abs() < 1e-12);
        assert!((m.mrr - (1.0 / 3.0 + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_retrieved_with_full_k_matches_matrix_path_bitwise() {
        use sdea_tensor::Rng;
        let mut rng = Rng::seed_from_u64(9);
        let src = Tensor::rand_normal(&[30, 8], 1.0, &mut rng);
        let tgt = Tensor::rand_normal(&[40, 8], 1.0, &mut rng);
        let gold: Vec<usize> = (0..30).map(|i| (i * 7) % 40).collect();
        let via_matrix = evaluate_ranking(&crate::similarity::cosine_matrix(&src, &tgt), &gold);
        let retr = ExactRetriever::new(&tgt);
        let via_retr = evaluate_retrieved(&retr, &src, &gold, 40);
        assert_eq!(via_matrix.hits1.to_bits(), via_retr.hits1.to_bits());
        assert_eq!(via_matrix.hits10.to_bits(), via_retr.hits10.to_bits());
        assert_eq!(via_matrix.mrr.to_bits(), via_retr.mrr.to_bits());
    }

    fn assert_bitwise(a: &AlignmentMetrics, b: &AlignmentMetrics, ctx: &str) {
        assert_eq!(a.hits1.to_bits(), b.hits1.to_bits(), "{ctx}: hits1");
        assert_eq!(a.hits10.to_bits(), b.hits10.to_bits(), "{ctx}: hits10");
        assert_eq!(a.mrr.to_bits(), b.mrr.to_bits(), "{ctx}: mrr");
    }

    fn random_pair() -> (Tensor, Tensor, Vec<usize>) {
        use sdea_tensor::Rng;
        let mut rng = Rng::seed_from_u64(9);
        let src = Tensor::rand_normal(&[30, 8], 1.0, &mut rng);
        let tgt = Tensor::rand_normal(&[40, 8], 1.0, &mut rng);
        let gold: Vec<usize> = (0..30).map(|i| (i * 7) % 40).collect();
        (src, tgt, gold)
    }

    #[test]
    fn blocked_ranking_matches_matrix_path_bitwise_at_any_block_and_threads() {
        use sdea_tensor::with_thread_budget;
        let (src, tgt, gold) = random_pair();
        let via_matrix = evaluate_ranking(&crate::similarity::cosine_matrix(&src, &tgt), &gold);
        for threads in [1usize, 8] {
            with_thread_budget(threads, || {
                for block in [0usize, 1, 7, 30, 1000] {
                    let b = evaluate_ranking_blocked(&src, &tgt, &gold, block);
                    assert_bitwise(&via_matrix, &b, &format!("threads {threads} block {block}"));
                }
            });
        }
    }

    #[test]
    fn blocked_retrieval_matches_one_shot_retrieval_bitwise() {
        use sdea_index::{IndexConfig, IndexKind, IvfRetriever};
        let (src, tgt, gold) = random_pair();
        let exact = ExactRetriever::new(&tgt);
        let ivf = IvfRetriever::build(
            &tgt,
            &IndexConfig { kind: IndexKind::Ivf, nlist: 4, nprobe: 2, quantize: true },
        );
        for (name, retr) in [("exact", &exact as &dyn Retriever), ("ivf", &ivf)] {
            for k in [5usize, 40] {
                let one_shot = evaluate_retrieved(retr, &src, &gold, k);
                for block in [0usize, 1, 7, 30, 1000] {
                    let b = evaluate_retrieved_blocked(retr, &src, &gold, k, block);
                    assert_bitwise(&one_shot, &b, &format!("{name} k {k} block {block}"));
                }
            }
        }
    }

    #[test]
    fn reranked_blocked_with_identity_rescore_matches_plain_blocked_bitwise() {
        use sdea_index::{IndexConfig, IndexKind, IvfRetriever};
        use sdea_tensor::with_thread_budget;
        let (src, tgt, gold) = random_pair();
        let exact = ExactRetriever::new(&tgt);
        let ivf = IvfRetriever::build(
            &tgt,
            &IndexConfig { kind: IndexKind::Ivf, nlist: 4, nprobe: 2, quantize: true },
        );
        for (name, retr) in [("exact", &exact as &dyn Retriever), ("ivf", &ivf)] {
            for threads in [1usize, 8] {
                with_thread_budget(threads, || {
                    for block in [0usize, 1, 7, 30] {
                        let plain = evaluate_retrieved_blocked(retr, &src, &gold, 10, block);
                        let rr = evaluate_retrieved_reranked_blocked(
                            retr,
                            &src,
                            &gold,
                            10,
                            block,
                            &mut |_, hits| hits,
                        );
                        assert_bitwise(&plain, &rr, &format!("{name} t{threads} block {block}"));
                    }
                });
            }
        }
    }

    #[test]
    fn reranked_blocked_applies_the_rescorer() {
        // A rescorer that moves the gold to the front everywhere must give
        // perfect Hits@1, whatever stage 1 said. The `start` offset indexes
        // the gold slice — that is the contract the closure relies on.
        let (src, tgt, gold) = random_pair();
        let retr = ExactRetriever::new(&tgt);
        let gold_ref = gold.clone();
        let m =
            evaluate_retrieved_reranked_blocked(&retr, &src, &gold, 40, 7, &mut |start, hits| {
                hits.into_iter()
                    .enumerate()
                    .map(|(r, mut row)| {
                        let g = gold_ref[start + r];
                        row.sort_by_key(|&(j, _)| (j != g) as u8);
                        row
                    })
                    .collect()
            });
        assert_eq!(m.hits1, 1.0);
    }

    #[test]
    fn sharded_target_evaluation_matches_matrix_path_bitwise() {
        let (src, tgt, gold) = random_pair();
        let via_matrix = evaluate_ranking(&crate::similarity::cosine_matrix(&src, &tgt), &gold);
        let base = std::env::temp_dir().join(format!("sdea_eval_shards_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for shard_rows in [1usize, 7, 40] {
            let dir = base.join(format!("h{shard_rows}"));
            let shards = EmbeddingShards::open_or_create(&dir, 40, 8, shard_rows, 0xfeed)
                .expect("create shards");
            for s in 0..shards.n_shards() {
                let (r0, r1) = shards.shard_range(s);
                shards.write_shard(s, &row_block(&tgt, r0, r1)).expect("write shard");
            }
            for block in [0usize, 1, 7, 30] {
                let b = evaluate_ranking_shards(&src, &shards, &gold, block).expect("sharded eval");
                assert_bitwise(&via_matrix, &b, &format!("shards {shard_rows} block {block}"));
            }
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn evaluate_retrieved_misses_get_the_lower_bound_rank() {
        // One target is the opposite of the query; with k = 1 the gold is
        // outside the shortlist and must count as rank k + 1 = 2.
        let tgt = Tensor::from_vec(vec![1.0, 0.0, -1.0, 0.0], &[2, 2]);
        let q = Tensor::from_vec(vec![1.0, 0.0], &[1, 2]);
        let retr = ExactRetriever::new(&tgt);
        let m = evaluate_retrieved(&retr, &q, &[1], 1);
        assert_eq!(m.hits1, 0.0);
        assert_eq!(m.hits10, 1.0, "rank 2 still counts for Hits@10");
        assert!((m.mrr - 0.5).abs() < 1e-12);
    }

    /// Regression (serving hardening): zero-norm embedding rows — e.g. an
    /// empty attribute text after normalization — must behave identically
    /// in the matrix path and every retriever backend, and can never push
    /// NaN into MRR. The convention ([`Tensor::normalized_view`]) is that
    /// a zero row's cosine against anything is exactly `0.0`.
    #[test]
    fn zero_norm_rows_agree_across_paths_and_keep_mrr_finite() {
        use sdea_index::{IndexConfig, IndexKind, IvfRetriever};
        // src row 1 and tgt rows 0, 2 are all-zero.
        let src = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.6, 0.8], &[3, 2]);
        let tgt =
            Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 1.0], &[5, 2]);
        let gold = vec![1, 0, 4];
        let sim = crate::similarity::cosine_matrix(&src, &tgt);
        // Zero rows and zero columns score exactly 0.0 — bitwise, not NaN.
        for j in 0..5 {
            assert_eq!(sim.row(1)[j].to_bits(), 0.0f32.to_bits(), "zero query vs target {j}");
        }
        for (i, row) in (0..3).map(|i| sim.row(i)).enumerate() {
            assert_eq!(row[0].to_bits(), 0.0f32.to_bits(), "query {i} vs zero target");
            assert_eq!(row[2].to_bits(), 0.0f32.to_bits(), "query {i} vs zero target");
        }
        let via_matrix = evaluate_ranking(&sim, &gold);
        assert!(via_matrix.mrr.is_finite() && via_matrix.mrr > 0.0, "MRR must stay finite");
        // Exact retriever: per-hit scores bitwise equal the matrix cells.
        let exact = ExactRetriever::new(&tgt);
        for (i, hits) in exact.search(&src, 5).iter().enumerate() {
            assert_eq!(hits.len(), 5);
            for &(j, s) in hits {
                assert_eq!(s.to_bits(), sim.row(i)[j].to_bits(), "query {i} target {j}");
            }
        }
        // Both backends produce the same metrics as the matrix, bitwise.
        let ivf = IvfRetriever::build(
            &tgt,
            &IndexConfig { kind: IndexKind::Ivf, nlist: 2, nprobe: 0, quantize: true },
        );
        for (name, m) in [
            ("exact", evaluate_retrieved(&exact, &src, &gold, 5)),
            ("ivf", evaluate_retrieved(&ivf, &src, &gold, 5)),
        ] {
            assert_eq!(m.hits1.to_bits(), via_matrix.hits1.to_bits(), "{name} hits1");
            assert_eq!(m.hits10.to_bits(), via_matrix.hits10.to_bits(), "{name} hits10");
            assert_eq!(m.mrr.to_bits(), via_matrix.mrr.to_bits(), "{name} mrr");
        }
    }

    /// An all-zero gold row still ranks deterministically: every score in
    /// its row is an exact 0.0 tie, so rank falls back to index order.
    #[test]
    fn all_zero_query_row_ranks_by_index_ties() {
        let src = Tensor::zeros(&[1, 3]);
        let tgt = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]);
        let sim = crate::similarity::cosine_matrix(&src, &tgt);
        assert_eq!(rank_of(sim.row(0), 0), 1);
        assert_eq!(rank_of(sim.row(0), 1), 2);
        let m = evaluate_ranking(&sim, &[1]);
        assert!(m.mrr.is_finite());
        assert!((m.mrr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_row_format() {
        let m = AlignmentMetrics { hits1: 0.87, hits10: 0.966, mrr: 0.91 };
        assert_eq!(m.paper_row(), " 87.0  96.6 0.91");
    }
}
