//! Pairwise cosine similarity and top-k retrieval.

use sdea_tensor::Tensor;

/// A dense `[n, m]` similarity matrix between `n` source and `m` target
/// entities. Row-major like [`Tensor`].
pub type SimilarityMatrix = Tensor;

/// Cosine similarity of every row of `a: [n,d]` against every row of
/// `b: [m,d]`, computed as normalized `a · bᵀ`. Rows are split across
/// threads for large inputs.
pub fn cosine_matrix(a: &Tensor, b: &Tensor) -> SimilarityMatrix {
    assert_eq!(a.rank(), 2, "cosine_matrix lhs rank");
    assert_eq!(b.rank(), 2, "cosine_matrix rhs rank");
    assert_eq!(a.shape()[1], b.shape()[1], "embedding width mismatch");
    let an = a.l2_normalize_rows();
    let bn = b.l2_normalize_rows();
    let (n, m, d) = (an.shape()[0], bn.shape()[0], an.shape()[1]);
    let mut out = vec![0.0f32; n * m];
    let threads = available_threads().min(n.max(1));
    if threads <= 1 || n * m < 1 << 16 {
        fill_rows(an.data(), bn.data(), &mut out, 0, n, m, d);
    } else {
        let chunk_rows = n.div_ceil(threads);
        let a_data = an.data();
        let b_data = bn.data();
        std::thread::scope(|scope| {
            let mut rest = &mut out[..];
            let mut start = 0usize;
            while start < n {
                let rows = chunk_rows.min(n - start);
                let (mine, tail) = rest.split_at_mut(rows * m);
                rest = tail;
                let s = start;
                scope.spawn(move || fill_rows(a_data, b_data, mine, s, rows, m, d));
                start += rows;
            }
        });
    }
    Tensor::from_vec(out, &[n, m])
}

fn fill_rows(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, rows: usize, m: usize, d: usize) {
    for i in 0..rows {
        let arow = &a[(row0 + i) * d..(row0 + i + 1) * d];
        let orow = &mut out[i * m..(i + 1) * m];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * d..(j + 1) * d];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Indices of the `k` largest values of `scores`, descending, ties broken by
/// lower index. `k` is clamped to `scores.len()`.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    // Partial selection: maintain a small sorted buffer (k is small).
    let mut best: Vec<(usize, f32)> = Vec::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        if best.len() < k || s > best[best.len() - 1].1 {
            let pos = best
                .iter()
                .position(|&(_, bs)| s > bs)
                .unwrap_or(best.len());
            best.insert(pos, (i, s));
            if best.len() > k {
                best.pop();
            }
        }
    }
    best.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::Rng;

    #[test]
    fn cosine_identity_rows() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let sim = cosine_matrix(&a, &a);
        assert!((sim.at2(0, 0) - 1.0).abs() < 1e-6);
        assert!((sim.at2(1, 1) - 1.0).abs() < 1e-6);
        assert!(sim.at2(0, 1).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        let sim = cosine_matrix(&a, &b);
        assert!((sim.item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = Rng::seed_from_u64(1);
        // big enough to trigger the threaded path
        let a = Tensor::rand_normal(&[300, 16], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[300, 16], 1.0, &mut rng);
        let sim = cosine_matrix(&a, &b);
        // spot-check against direct computation
        for &(i, j) in &[(0usize, 0usize), (7, 123), (299, 299), (150, 3)] {
            let ai = a.row(i);
            let bj = b.row(j);
            let dot: f32 = ai.iter().zip(bj).map(|(&x, &y)| x * y).sum();
            let na: f32 = ai.iter().map(|&x| x * x).sum::<f32>().sqrt();
            let nb: f32 = bj.iter().map(|&x| x * x).sum::<f32>().sqrt();
            let expected = dot / (na * nb);
            assert!((sim.at2(i, j) - expected).abs() < 1e-4, "({i},{j})");
        }
    }

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.1, 0.9, 0.5, 0.9, -1.0];
        let top = top_k_indices(&scores, 3);
        assert_eq!(top, vec![1, 3, 2]); // tie at 0.9 broken by index
    }

    #[test]
    fn top_k_clamps() {
        assert_eq!(top_k_indices(&[1.0, 2.0], 10), vec![1, 0]);
        assert!(top_k_indices(&[], 3).is_empty());
        assert!(top_k_indices(&[1.0], 0).is_empty());
    }

    #[test]
    fn top_k_matches_full_sort() {
        let mut rng = Rng::seed_from_u64(2);
        let scores: Vec<f32> = (0..200).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let top = top_k_indices(&scores, 10);
        let mut idx: Vec<usize> = (0..200).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        assert_eq!(top, idx[..10].to_vec());
    }
}
