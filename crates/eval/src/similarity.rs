//! Pairwise cosine similarity and blocked top-k / argmax retrieval.
//!
//! All bulk operations here fan out through [`sdea_tensor::par`], so they
//! honor the process-wide thread budget (`SDEA_THREADS` /
//! `SdeaConfig::threads`) and are bit-identical at any thread count.

use sdea_tensor::{par_map_collect, Tensor};

/// A dense `[n, m]` similarity matrix between `n` source and `m` target
/// entities. Row-major like [`Tensor`].
pub type SimilarityMatrix = Tensor;

/// Column-block width for the column-wise scans ([`argmax_cols`]). Fixed
/// (not derived from the thread budget) so the scan pattern — and thus the
/// result — never depends on how many workers run.
const COL_BLOCK: usize = 256;

/// Total descending order over similarity scores with **NaN ranked last**
/// (worst). Historically defined here; now the workspace-wide convention
/// lives in [`sdea_tensor::ord`] (the retrieval layer needs it below this
/// crate) and this re-export keeps every existing call site compiling.
pub use sdea_tensor::desc_nan_last;

/// Cosine similarity of every row of `a: [n,d]` against every row of
/// `b: [m,d]`: L2-normalize both then compute `a · bᵀ`, which rides the
/// parallel [`Tensor::matmul_t`] kernel.
///
/// Zero-norm rows are the documented degenerate case: normalization leaves
/// them as zero vectors (see [`Tensor::l2_normalize_rows`]), so their
/// cosine against anything is exactly `0.0`, never NaN. NaN can still
/// enter through NaN *inputs*; downstream ranking and matching order such
/// scores with [`desc_nan_last`].
pub fn cosine_matrix(a: &Tensor, b: &Tensor) -> SimilarityMatrix {
    assert_eq!(a.rank(), 2, "cosine_matrix lhs rank");
    assert_eq!(b.rank(), 2, "cosine_matrix rhs rank");
    assert_eq!(a.shape()[1], b.shape()[1], "embedding width mismatch");
    let _span = sdea_obs::span("eval.cosine_matrix");
    sdea_obs::add("eval.cosine_cells", (a.shape()[0] * b.shape()[0]) as u64);
    a.normalized_view().matmul_t(&b.normalized_view())
}

/// Indices of the `k` largest values of `scores`, descending under
/// [`desc_nan_last`] (NaN ranks worst), ties broken by lower index. `k` is
/// clamped to `scores.len()`.
///
/// The selection kernel itself lives in the retrieval layer
/// ([`sdea_index::top_k_scored`], which also returns the scores); this is
/// the index-only view of it. The scored selection buffer is a per-thread
/// scratch reused across rows ([`sdea_index::top_k_scored_into`]), so the
/// only allocation per call is the returned index vector — visible in the
/// `sdea_obs::mem` allocation counters on hot ranking paths.
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<(usize, f32)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|s| {
        let mut best = s.borrow_mut();
        sdea_index::top_k_scored_into(scores, k, &mut best);
        best.iter().map(|&(i, _)| i).collect()
    })
}

/// Top-k column indices for every row of `sim`, rows fanned out across the
/// thread budget. `out[i]` equals `top_k_indices(sim.row(i), k)`.
pub fn top_k_rows(sim: &SimilarityMatrix, k: usize) -> Vec<Vec<usize>> {
    assert_eq!(sim.rank(), 2);
    let _span = sdea_obs::span("eval.top_k_rows");
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    par_map_collect(n, m.max(1), |i| top_k_indices(sim.row(i), k))
}

/// Argmax column of every row (ties broken by lower column index); 0 for a
/// zero-width matrix.
pub fn argmax_rows(sim: &SimilarityMatrix) -> Vec<usize> {
    assert_eq!(sim.rank(), 2);
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    par_map_collect(n, m.max(1), |i| {
        let row = sim.row(i);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = j;
            }
        }
        best
    })
}

/// Argmax row of every column (ties broken by lower row index); 0 for a
/// zero-height matrix. Scans row-major in fixed [`COL_BLOCK`]-wide column
/// blocks so it stays cache-friendly without per-element indexed access,
/// and parallelizes across blocks.
pub fn argmax_cols(sim: &SimilarityMatrix) -> Vec<usize> {
    assert_eq!(sim.rank(), 2);
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    if m == 0 {
        return Vec::new();
    }
    let blocks = m.div_ceil(COL_BLOCK);
    let parts = par_map_collect(blocks, COL_BLOCK * n, |bi| {
        let c0 = bi * COL_BLOCK;
        let c1 = (c0 + COL_BLOCK).min(m);
        let w = c1 - c0;
        let mut best_v = vec![f32::NEG_INFINITY; w];
        let mut best_i = vec![0usize; w];
        for i in 0..n {
            let row = &sim.row(i)[c0..c1];
            for (c, &v) in row.iter().enumerate() {
                if v > best_v[c] {
                    best_v[c] = v;
                    best_i[c] = i;
                }
            }
        }
        best_i
    });
    parts.into_iter().flatten().collect()
}

/// Column indices of every row sorted by descending score under
/// [`desc_nan_last`] (NaN columns sort to the back), ties broken by lower
/// column index; rows fanned out across the thread budget.
///
/// Sorting is unstable in place: the comparator's index tie-break makes it
/// a strict total order with no equal elements, so the result is identical
/// to a stable sort — without the stable sort's `O(m)` merge buffer, which
/// used to be allocated and freed once *per row*. The only per-row
/// allocation left is the returned index vector (pinned by the
/// `argsort_allocates_one_vector_per_row` test via the `sdea_obs::mem`
/// counters).
pub fn argsort_rows_desc(sim: &SimilarityMatrix) -> Vec<Vec<usize>> {
    assert_eq!(sim.rank(), 2);
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    // ~log(m) passes over the row; 8 is a round per-element sort-cost guess.
    par_map_collect(n, m.saturating_mul(8).max(1), |i| {
        let row = sim.row(i);
        let mut idx: Vec<usize> = (0..m).collect();
        idx.sort_unstable_by(|&a, &b| desc_nan_last(row[a], row[b]).then(a.cmp(&b)));
        idx
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdea_tensor::{with_thread_budget, Rng};

    #[test]
    fn cosine_identity_rows() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let sim = cosine_matrix(&a, &a);
        assert!((sim.at2(0, 0) - 1.0).abs() < 1e-6);
        assert!((sim.at2(1, 1) - 1.0).abs() < 1e-6);
        assert!(sim.at2(0, 1).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3]);
        let sim = cosine_matrix(&a, &b);
        assert!((sim.item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = Rng::seed_from_u64(1);
        // big enough to trigger the threaded path
        let a = Tensor::rand_normal(&[300, 16], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[300, 16], 1.0, &mut rng);
        let sim = with_thread_budget(8, || cosine_matrix(&a, &b));
        // spot-check against direct computation
        for &(i, j) in &[(0usize, 0usize), (7, 123), (299, 299), (150, 3)] {
            let ai = a.row(i);
            let bj = b.row(j);
            let dot: f32 = ai.iter().zip(bj).map(|(&x, &y)| x * y).sum();
            let na: f32 = ai.iter().map(|&x| x * x).sum::<f32>().sqrt();
            let nb: f32 = bj.iter().map(|&x| x * x).sum::<f32>().sqrt();
            let expected = dot / (na * nb);
            assert!((sim.at2(i, j) - expected).abs() < 1e-4, "({i},{j})");
        }
    }

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.1, 0.9, 0.5, 0.9, -1.0];
        let top = top_k_indices(&scores, 3);
        assert_eq!(top, vec![1, 3, 2]); // tie at 0.9 broken by index
    }

    #[test]
    fn top_k_clamps() {
        assert_eq!(top_k_indices(&[1.0, 2.0], 10), vec![1, 0]);
        assert!(top_k_indices(&[], 3).is_empty());
        assert!(top_k_indices(&[1.0], 0).is_empty());
    }

    #[test]
    fn top_k_matches_full_sort() {
        let mut rng = Rng::seed_from_u64(2);
        let scores: Vec<f32> = (0..200).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let top = top_k_indices(&scores, 10);
        let mut idx: Vec<usize> = (0..200).collect();
        idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        assert_eq!(top, idx[..10].to_vec());
    }

    #[test]
    fn top_k_rows_matches_per_row() {
        let mut rng = Rng::seed_from_u64(3);
        let sim = Tensor::rand_normal(&[40, 70], 1.0, &mut rng);
        let all = with_thread_budget(4, || top_k_rows(&sim, 5));
        for (i, top) in all.iter().enumerate() {
            assert_eq!(*top, top_k_indices(sim.row(i), 5), "row {i}");
        }
    }

    #[test]
    fn argmax_rows_and_cols_match_naive() {
        let mut rng = Rng::seed_from_u64(4);
        // wider than COL_BLOCK to cover multi-block scans
        let sim = Tensor::rand_normal(&[33, 517], 1.0, &mut rng);
        let (rows, cols) = with_thread_budget(4, || (argmax_rows(&sim), argmax_cols(&sim)));
        for (i, &got) in rows.iter().enumerate() {
            let r = sim.row(i);
            let naive = (0..517).max_by(|&a, &b| r[a].total_cmp(&r[b]).then(b.cmp(&a))).unwrap();
            assert_eq!(got, naive, "row {i}");
        }
        for j in (0..517).step_by(41) {
            let naive = (0..33)
                .max_by(|&a, &b| sim.at2(a, j).total_cmp(&sim.at2(b, j)).then(b.cmp(&a)))
                .unwrap();
            assert_eq!(cols[j], naive, "col {j}");
        }
    }

    #[test]
    fn argsort_rows_desc_is_a_full_stable_ranking() {
        let sim = Tensor::from_vec(vec![0.5, 0.9, 0.5, -0.1], &[1, 4]);
        let order = argsort_rows_desc(&sim);
        assert_eq!(order, vec![vec![1, 0, 2, 3]]); // 0.5-tie broken by index
    }

    /// The scratch-churn regression guard: a full argsort over `n` rows
    /// must allocate essentially one index vector per row — not the extra
    /// per-row merge buffer the old stable sort used, which doubled the
    /// allocated bytes. The bound is measured with the `sdea_obs::mem`
    /// counting allocator; it is generous enough (+1 MiB) to absorb
    /// allocations from tests running concurrently in this binary, while
    /// the old two-buffers-per-row behavior (~2x the payload) would still
    /// blow through it.
    #[test]
    fn argsort_allocates_one_vector_per_row() {
        if !sdea_obs::mem::counting_enabled() {
            return; // counting disabled for this process; nothing to measure
        }
        let (n, m) = (256usize, 1024usize);
        let mut rng = Rng::seed_from_u64(5);
        let sim = Tensor::rand_normal(&[n, m], 1.0, &mut rng);
        let before = sdea_obs::mem::total_allocated_bytes();
        let order = with_thread_budget(1, || argsort_rows_desc(&sim));
        let delta = sdea_obs::mem::total_allocated_bytes() - before;
        assert_eq!(order.len(), n);
        let payload = (n * m * std::mem::size_of::<usize>()) as u64;
        assert!(
            delta < payload + payload / 2 + (1 << 20),
            "argsort allocated {delta} bytes for a {payload}-byte result"
        );
    }

    #[test]
    fn desc_nan_last_is_a_total_order() {
        use std::cmp::Ordering::*;
        assert_eq!(desc_nan_last(1.0, 0.5), Less); // higher score ranks first
        assert_eq!(desc_nan_last(0.5, 1.0), Greater);
        assert_eq!(desc_nan_last(0.5, 0.5), Equal);
        assert_eq!(desc_nan_last(f32::NAN, -1e30), Greater); // NaN worst
        assert_eq!(desc_nan_last(f32::NEG_INFINITY, f32::NAN), Less);
        assert_eq!(desc_nan_last(f32::NAN, f32::NAN), Equal);
        assert_eq!(desc_nan_last(f32::INFINITY, f32::MAX), Less);
        // -0.0 vs +0.0: total_cmp puts +0.0 first in descending order.
        assert_eq!(desc_nan_last(0.0, -0.0), Less);
    }

    #[test]
    fn nan_scores_rank_last_never_panic() {
        let scores = [0.2, f32::NAN, 0.9, f32::NAN, -0.5];
        // top_k: NaN never beats a real score, NaN ties broken by index.
        assert_eq!(top_k_indices(&scores, 3), vec![2, 0, 4]);
        assert_eq!(top_k_indices(&scores, 5), vec![2, 0, 4, 1, 3]);
        // argsort: same full ordering, NaN columns at the back.
        let sim = Tensor::from_vec(scores.to_vec(), &[1, 5]);
        assert_eq!(argsort_rows_desc(&sim), vec![vec![2, 0, 4, 1, 3]]);
    }

    #[test]
    fn all_nan_row_is_index_order() {
        let sim = Tensor::from_vec(vec![f32::NAN; 4], &[1, 4]);
        assert_eq!(argsort_rows_desc(&sim), vec![vec![0, 1, 2, 3]]);
        assert_eq!(top_k_indices(sim.row(0), 2), vec![0, 1]);
    }
}
