//! String similarity utilities shared by the lexical baselines (CEA's
//! Levenshtein feature) and the benchmark generator's own checks.

/// Plain Levenshtein edit distance (two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized edit similarity in `[0,1]` (1 = identical).
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let dist = levenshtein(a, b) as f64;
    let max_len = a.chars().count().max(b.chars().count()).max(1) as f64;
    1.0 - dist / max_len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "xyz"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn similarity_bounds_and_symmetry() {
        for (a, b) in [("abc", "abd"), ("a", "abcdef"), ("", "x")] {
            let s = edit_similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
            assert_eq!(s, edit_similarity(b, a));
        }
    }

    #[test]
    fn triangle_inequality_on_distance() {
        let (a, b, c) = ("ronaldo", "ronalda", "renaldo");
        assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
    }
}
