//! # sdea-eval
//!
//! Evaluation metrics and similarity computation for entity alignment.
//!
//! Implements the paper's protocol (Section V-A2): for each source entity,
//! target entities are ranked by cosine similarity of their embeddings; the
//! reported metrics are Hits@1, Hits@10 and MRR over the test seed links.
//! Also provides CSLS re-ranking (a standard hubness correction used by
//! several baselines) and paper-style table formatting.

#![forbid(unsafe_code)]

pub mod csls;
pub mod metrics;
pub mod report;
pub mod similarity;
pub mod strings;

pub use csls::{csls_metrics_blocked, csls_rescale, csls_rescale_with_means, neighborhood_means};
pub use metrics::{
    evaluate_ranking, evaluate_ranking_blocked, evaluate_ranking_shards, evaluate_retrieved,
    evaluate_retrieved_blocked, evaluate_retrieved_reranked_blocked, rank_of, AlignmentMetrics,
    RescoreFn,
};
pub use report::{format_table, TableRow};
pub use similarity::{
    argmax_cols, argmax_rows, argsort_rows_desc, cosine_matrix, desc_nan_last, top_k_indices,
    top_k_rows, SimilarityMatrix,
};
