//! Cross-domain similarity local scaling (CSLS), the hubness correction of
//! Lample et al. used by several literal-based baselines (CEA's MUSE
//! embeddings are trained with it).
//!
//! `csls(x, y) = 2·cos(x, y) − r(x) − r(y)` where `r(·)` is the mean cosine
//! similarity to the k nearest neighbours in the *other* domain.

use crate::similarity::SimilarityMatrix;
use sdea_index::Retriever;
use sdea_tensor::Tensor;
use sdea_tensor::{par_map_collect, par_row_chunks};

/// Re-scales a cosine similarity matrix with CSLS (k nearest neighbours).
/// Row means, column means and the rescale itself all fan out across the
/// thread budget.
///
/// `k` is clamped per direction to the number of available neighbours
/// (`k > m` row-wise / `k > n` column-wise just averages over everything),
/// so any `k >= 1` is valid for any matrix shape, including zero columns.
pub fn csls_rescale(sim: &SimilarityMatrix, k: usize) -> SimilarityMatrix {
    assert!(k >= 1, "CSLS needs k >= 1");
    let _span = sdea_obs::span("eval.csls");
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    let k_row = k.min(m);
    let k_col = k.min(n);
    // r_src[i]: mean of top-k entries of row i.
    let r_src =
        par_map_collect(n, m.max(1), |i| mean_top_k(&sim.data()[i * m..(i + 1) * m], k_row));
    // r_tgt[j]: mean of top-k entries of column j — transpose once so the
    // column scans become contiguous row scans.
    let sim_t = sim.transpose2();
    let r_tgt =
        par_map_collect(m, n.max(1), |j| mean_top_k(&sim_t.data()[j * n..(j + 1) * n], k_col));
    csls_rescale_with_means(sim, &r_src, &r_tgt)
}

/// The CSLS combination step alone: `out[i][j] = 2·sim[i][j] − r_src[i] −
/// r_tgt[j]`, fanned out across the thread budget. Callers that already
/// hold neighbourhood means — e.g. from [`neighborhood_means`] over a
/// retriever shortlist — skip the full-matrix mean scans.
pub fn csls_rescale_with_means(
    sim: &SimilarityMatrix,
    r_src: &[f32],
    r_tgt: &[f32],
) -> SimilarityMatrix {
    let (n, m) = (sim.shape()[0], sim.shape()[1]);
    assert_eq!(r_src.len(), n, "one source mean per row");
    assert_eq!(r_tgt.len(), m, "one target mean per column");
    let mut out = sim.clone();
    if m > 0 {
        let src = sim.data();
        par_row_chunks(out.data_mut(), n, m, 4 * m, |row0, block| {
            for (r, orow) in block.chunks_mut(m).enumerate() {
                let i = row0 + r;
                let srow = &src[i * m..(i + 1) * m];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o = 2.0 * srow[j] - r_src[i] - r_tgt[j];
                }
            }
        });
    }
    out
}

/// CSLS neighbourhood term `r(·)` through a [`Retriever`]: for every query
/// row, the mean cosine to its `k` nearest indexed neighbours, summed in
/// rank order. With an exact backend this is bit-identical to the top-k
/// row means [`csls_rescale`] computes from the full similarity matrix
/// (same scores, same summation order); an IVF backend approximates the
/// same term from its shortlist without materializing `n × m` cells.
///
/// `k` is clamped to the index size; an empty index yields all-zero means
/// (nothing to average — matches `mean_top_k` of an empty row).
pub fn neighborhood_means(retr: &dyn Retriever, queries: &Tensor, k: usize) -> Vec<f32> {
    assert!(k >= 1, "CSLS needs k >= 1");
    let _span = sdea_obs::span("eval.csls_means");
    let hits = retr.search(queries, k);
    hits.iter()
        .map(|row| {
            let sum: f32 = row.iter().map(|&(_, s)| s).sum();
            sum / row.len().max(1) as f32
        })
        .collect()
}

/// CSLS-corrected alignment metrics computed **blocked**: takes the raw
/// embeddings, streams the similarity in `block_rows`-high query blocks (0
/// means one block) and never materializes the full `n × m` matrix — not
/// for the row means, not for the column means, not for the rescale.
///
/// Bit-identical to
/// `evaluate_ranking(&csls_rescale(&cosine_matrix(src, tgt), k), gold)` at
/// any block size and thread budget:
///
/// * row means — each block row equals the full-matrix row bitwise
///   (per-row normalization, per-element `matmul_t`), so `mean_top_k`
///   sees identical data;
/// * column means — the matrix path scans `simᵀ` rows; here each target
///   block is scored against *all* sources, giving the same cells because
///   IEEE multiplication commutes and both matmul orientations accumulate
///   ascending over the embedding dimension (the same argument pinned
///   bitwise by `retriever_means_match_matrix_means_bitwise` below);
/// * rescale + ranking — [`csls_rescale_with_means`] is per-cell
///   arithmetic and the rank accumulation replays the serial f64 additions
///   in global row order ([`crate::metrics::RankAccum`]).
pub fn csls_metrics_blocked(
    src: &Tensor,
    tgt: &Tensor,
    gold: &[usize],
    k: usize,
    block_rows: usize,
) -> crate::metrics::AlignmentMetrics {
    assert!(k >= 1, "CSLS needs k >= 1");
    assert_eq!(src.rank(), 2, "csls_metrics_blocked expects rank-2 src");
    assert_eq!(tgt.rank(), 2, "csls_metrics_blocked expects rank-2 tgt");
    assert_eq!(src.shape()[1], tgt.shape()[1], "embedding width mismatch");
    assert_eq!(src.shape()[0], gold.len(), "one gold target per source row");
    let (n, m) = (src.shape()[0], tgt.shape()[0]);
    for (i, &g) in gold.iter().enumerate() {
        assert!(g < m, "evaluate_ranking: gold[{i}] column {g} out of range for {m} targets");
    }
    let _span = sdea_obs::span("eval.csls_blocked");
    let block = if block_rows == 0 { n.max(m).max(1) } else { block_rows };
    let (k_row, k_col) = (k.min(m), k.min(n));
    // The normalized embedding tables are O((n + m)·d) — embedding-scale,
    // not matrix-scale — and shared by all three passes.
    let src_n = src.normalized_view();
    let tgt_n = tgt.normalized_view();
    // Pass 1 — r_src[i]: mean of the top-k entries of similarity row i,
    // one query block at a time.
    let mut r_src = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + block).min(n);
        let sim_b = crate::metrics::row_block(&src_n, start, end).matmul_t(&tgt_n);
        r_src.extend(par_map_collect(end - start, m.max(1), |r| {
            mean_top_k(&sim_b.data()[r * m..(r + 1) * m], k_row)
        }));
        start = end;
    }
    // Pass 2 — r_tgt[j]: mean of the top-k entries of similarity column j,
    // one *target* block at a time scored against all sources.
    let mut r_tgt = Vec::with_capacity(m);
    let mut tstart = 0usize;
    while tstart < m {
        let tend = (tstart + block).min(m);
        let cols = crate::metrics::row_block(&tgt_n, tstart, tend).matmul_t(&src_n);
        r_tgt.extend(par_map_collect(tend - tstart, n.max(1), |r| {
            mean_top_k(&cols.data()[r * n..(r + 1) * n], k_col)
        }));
        tstart = tend;
    }
    // Pass 3 — rescale each query block with the global means and rank it.
    let mut acc = crate::metrics::RankAccum::default();
    let mut start = 0usize;
    while start < n {
        let end = (start + block).min(n);
        let sim_b = crate::metrics::row_block(&src_n, start, end).matmul_t(&tgt_n);
        let rescaled = csls_rescale_with_means(&sim_b, &r_src[start..end], &r_tgt);
        let ranks = par_map_collect(end - start, m.max(1), |r| {
            crate::metrics::rank_of(&rescaled.data()[r * m..(r + 1) * m], gold[start + r])
        });
        for rank in ranks {
            acc.push(rank);
        }
        start = end;
    }
    acc.finish()
}

fn mean_top_k(scores: &[f32], k: usize) -> f32 {
    let idx = crate::similarity::top_k_indices(scores, k);
    let sum: f32 = idx.iter().map(|&i| scores[i]).sum();
    sum / idx.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_ranking;

    #[test]
    fn csls_penalizes_hubs() {
        // Column 0 is a "hub": similar to everything. Column 1 is the true
        // match of row 0 but slightly below the hub. CSLS should flip them.
        let sim = Tensor::from_vec(
            vec![
                0.90, 0.89, 0.10, //
                0.90, 0.10, 0.80, //
                0.90, 0.15, 0.05,
            ],
            &[3, 3],
        );
        let before = evaluate_ranking(&sim, &[1, 2, 0]);
        let after = evaluate_ranking(&csls_rescale(&sim, 2), &[1, 2, 0]);
        assert!(after.hits1 >= before.hits1, "CSLS should not hurt this case");
        // row 0: the hub column's r_tgt is large, demoting it.
        let rescaled = csls_rescale(&sim, 2);
        assert!(
            rescaled.at2(0, 1) > rescaled.at2(0, 0),
            "true match should outrank hub after CSLS"
        );
    }

    #[test]
    fn csls_preserves_shape() {
        let sim = Tensor::from_vec(vec![0.5; 12], &[3, 4]);
        let r = csls_rescale(&sim, 1);
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    fn uniform_matrix_stays_uniform() {
        let sim = Tensor::from_vec(vec![0.3; 9], &[3, 3]);
        let r = csls_rescale(&sim, 2);
        let first = r.data()[0];
        assert!(r.data().iter().all(|&v| (v - first).abs() < 1e-6));
    }

    #[test]
    fn k_larger_than_matrix_clamps_to_full_mean() {
        let sim = Tensor::from_vec(vec![0.9, 0.1, 0.4, 0.6, 0.2, 0.8], &[2, 3]);
        // k far beyond both dimensions behaves exactly like k = max(n, m).
        let clamped = csls_rescale(&sim, 50);
        let full = csls_rescale(&sim, 3);
        assert_eq!(clamped, full);
        assert_eq!(clamped.shape(), &[2, 3]);
        assert!(clamped.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn retriever_means_match_matrix_means_bitwise() {
        use crate::similarity::cosine_matrix;
        use sdea_index::ExactRetriever;
        use sdea_tensor::Rng;
        let mut rng = Rng::seed_from_u64(17);
        let a = Tensor::rand_normal(&[25, 8], 1.0, &mut rng);
        let b = Tensor::rand_normal(&[30, 8], 1.0, &mut rng);
        let sim = cosine_matrix(&a, &b);
        let k = 10;
        // Row means from the b-index, column means from the a-index: the
        // transposed-role scores are bitwise equal (IEEE multiplication
        // commutes, both matmul orientations accumulate ascending k).
        let r_src = neighborhood_means(&ExactRetriever::new(&b), &a, k);
        let r_tgt = neighborhood_means(&ExactRetriever::new(&a), &b, k);
        for (i, &r) in r_src.iter().enumerate() {
            let expect = mean_top_k(&sim.data()[i * 30..(i + 1) * 30], k);
            assert_eq!(r.to_bits(), expect.to_bits(), "row mean {i}");
        }
        let via_means = csls_rescale_with_means(&sim, &r_src, &r_tgt);
        let direct = csls_rescale(&sim, k);
        assert_eq!(via_means.shape(), direct.shape());
        for (x, y) in via_means.data().iter().zip(direct.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_csls_metrics_match_matrix_path_bitwise() {
        use crate::similarity::cosine_matrix;
        use sdea_tensor::{with_thread_budget, Rng};
        let mut rng = Rng::seed_from_u64(23);
        let src = Tensor::rand_normal(&[30, 8], 1.0, &mut rng);
        let tgt = Tensor::rand_normal(&[40, 8], 1.0, &mut rng);
        let gold: Vec<usize> = (0..30).map(|i| (i * 11) % 40).collect();
        let k = 10;
        let via_matrix = evaluate_ranking(&csls_rescale(&cosine_matrix(&src, &tgt), k), &gold);
        for threads in [1usize, 8] {
            with_thread_budget(threads, || {
                for block in [0usize, 1, 7, 30, 1000] {
                    let b = csls_metrics_blocked(&src, &tgt, &gold, k, block);
                    let ctx = format!("threads {threads} block {block}");
                    assert_eq!(via_matrix.hits1.to_bits(), b.hits1.to_bits(), "{ctx}: hits1");
                    assert_eq!(via_matrix.hits10.to_bits(), b.hits10.to_bits(), "{ctx}: hits10");
                    assert_eq!(via_matrix.mrr.to_bits(), b.mrr.to_bits(), "{ctx}: mrr");
                }
            });
        }
    }

    #[test]
    fn zero_column_matrix_passes_through() {
        // No targets: nothing to rescale, the empty shape is preserved
        // instead of an index panic in the neighbour scans.
        let sim = Tensor::zeros(&[3, 0]);
        let r = csls_rescale(&sim, 4);
        assert_eq!(r.shape(), &[3, 0]);
    }
}
