//! Property-based tests for metrics and similarity.

use proptest::prelude::*;
use sdea_eval::{cosine_matrix, csls_rescale, evaluate_ranking, rank_of, top_k_indices};
use sdea_tensor::Tensor;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cosine similarity is symmetric and bounded in [-1, 1].
    #[test]
    fn cosine_bounded_and_symmetric(a in matrix(4, 6)) {
        let sim = cosine_matrix(&a, &a);
        for i in 0..4 {
            for j in 0..4 {
                let v = sim.at2(i, j);
                prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&v));
                prop_assert!((v - sim.at2(j, i)).abs() < 1e-4);
            }
        }
    }

    /// Raising the gold score (weakly) improves its rank.
    #[test]
    fn rank_monotone_in_score(scores in prop::collection::vec(-5.0f32..5.0, 3..20), bump in 0.1f32..3.0) {
        let gold = scores.len() / 2;
        let before = rank_of(&scores, gold);
        let mut boosted = scores.clone();
        boosted[gold] += bump;
        let after = rank_of(&boosted, gold);
        prop_assert!(after <= before);
    }

    /// Metrics are invariant under a consistent column permutation.
    #[test]
    fn metrics_invariant_under_column_permutation(sim in matrix(4, 7), shift in 1usize..6) {
        let gold = vec![0usize, 2, 4, 6];
        let base = evaluate_ranking(&sim, &gold);
        // rotate columns by `shift`
        let m = 7;
        let mut rotated = Tensor::zeros(&[4, m]);
        for i in 0..4 {
            for j in 0..m {
                rotated.row_mut(i)[(j + shift) % m] = sim.at2(i, j);
            }
        }
        let gold2: Vec<usize> = gold.iter().map(|&g| (g + shift) % m).collect();
        let permuted = evaluate_ranking(&rotated, &gold2);
        prop_assert!((base.hits1 - permuted.hits1).abs() < 1e-12);
        prop_assert!((base.mrr - permuted.mrr).abs() < 1e-9);
    }

    /// top_k returns strictly descending scores (ties by index) and valid
    /// indices.
    #[test]
    fn top_k_sorted(scores in prop::collection::vec(-5.0f32..5.0, 1..40), k in 1usize..15) {
        let top = top_k_indices(&scores, k);
        prop_assert_eq!(top.len(), k.min(scores.len()));
        for w in top.windows(2) {
            let (a, b) = (w[0], w[1]);
            prop_assert!(
                scores[a] > scores[b] || (scores[a] == scores[b] && a < b),
                "order violated: {} then {}", a, b
            );
        }
    }

    /// CSLS preserves shape and keeps all values finite.
    #[test]
    fn csls_total(sim in matrix(5, 6), k in 1usize..5) {
        let r = csls_rescale(&sim, k);
        prop_assert_eq!(r.shape(), sim.shape());
        prop_assert!(r.all_finite());
    }
}
