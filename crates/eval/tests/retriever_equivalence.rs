//! End-to-end metric equivalence: Hits@1 / Hits@10 / MRR and the CSLS
//! neighbourhood terms computed through the retrieval layer (IVF at
//! `nprobe = all`, quantized or not) are bit-identical to the historical
//! full-matrix path, at SDEA_THREADS budgets 1 and 8.

use sdea_eval::{
    cosine_matrix, csls_rescale, csls_rescale_with_means, evaluate_ranking, evaluate_retrieved,
    neighborhood_means,
};
use sdea_index::{build_retriever, IndexConfig, IndexKind};
use sdea_tensor::{with_thread_budget, Rng, Tensor};

fn aligned_world(n: usize, d: usize, seed: u64) -> (Tensor, Tensor, Vec<usize>) {
    let mut rng = Rng::seed_from_u64(seed);
    let centers = Tensor::rand_normal(&[6, d], 1.0, &mut rng);
    let mut src = Vec::with_capacity(n * d);
    let mut tgt = Vec::with_capacity(n * d);
    for i in 0..n {
        let base = centers.row(i % 6);
        for &b in base {
            tgt.push(b + 0.3 * rng.normal());
            src.push(b + 0.3 * rng.normal());
        }
    }
    let gold = (0..n).collect();
    (Tensor::from_vec(src, &[n, d]), Tensor::from_vec(tgt, &[n, d]), gold)
}

fn configs() -> Vec<IndexConfig> {
    vec![
        IndexConfig::default(),
        IndexConfig { kind: IndexKind::Ivf, nlist: 10, nprobe: 0, quantize: false },
        IndexConfig { kind: IndexKind::Ivf, nlist: 10, nprobe: 0, quantize: true },
    ]
}

#[test]
fn metrics_via_any_exact_backend_match_the_matrix_path_bitwise() {
    let (src, tgt, gold) = aligned_world(120, 16, 31);
    let expected = evaluate_ranking(&cosine_matrix(&src, &tgt), &gold);
    for cfg in configs() {
        let retr = build_retriever(&tgt, &cfg);
        for budget in [1usize, 8] {
            let got = with_thread_budget(budget, || {
                evaluate_retrieved(retr.as_ref(), &src, &gold, tgt.shape()[0])
            });
            let ctx = format!("{cfg:?} budget={budget}");
            assert_eq!(expected.hits1.to_bits(), got.hits1.to_bits(), "hits1 {ctx}");
            assert_eq!(expected.hits10.to_bits(), got.hits10.to_bits(), "hits10 {ctx}");
            assert_eq!(expected.mrr.to_bits(), got.mrr.to_bits(), "mrr {ctx}");
        }
    }
}

#[test]
fn csls_via_retriever_means_matches_the_matrix_path_bitwise() {
    let (src, tgt, _) = aligned_world(90, 12, 32);
    let sim = cosine_matrix(&src, &tgt);
    let k = 10;
    let direct = csls_rescale(&sim, k);
    for cfg in configs() {
        let tgt_index = build_retriever(&tgt, &cfg);
        let src_index = build_retriever(&src, &cfg);
        for budget in [1usize, 8] {
            let rescaled = with_thread_budget(budget, || {
                let r_src = neighborhood_means(tgt_index.as_ref(), &src, k);
                let r_tgt = neighborhood_means(src_index.as_ref(), &tgt, k);
                csls_rescale_with_means(&sim, &r_src, &r_tgt)
            });
            for (i, (x, y)) in rescaled.data().iter().zip(direct.data()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "cell {i} {cfg:?} budget={budget}");
            }
        }
    }
}

#[test]
fn truncated_shortlists_preserve_shallow_metrics() {
    // With k = 10 every hit that matters for Hits@1/Hits@10 is still in
    // the shortlist; only MRR's deep tail is approximated (from below).
    let (src, tgt, gold) = aligned_world(100, 16, 33);
    let full = evaluate_ranking(&cosine_matrix(&src, &tgt), &gold);
    let retr = build_retriever(&tgt, &IndexConfig::default());
    let short = evaluate_retrieved(retr.as_ref(), &src, &gold, 10);
    assert_eq!(full.hits1.to_bits(), short.hits1.to_bits());
    assert_eq!(full.hits10.to_bits(), short.hits10.to_bits());
    // A miss counts as rank k+1, a lower bound on the true rank — so the
    // truncated MRR can only over-state the deep tail, never lose hits.
    assert!(short.mrr >= full.mrr - 1e-12, "rank k+1 is a lower bound on the true rank");
}
