//! Thread-budget invariance of the scoring layer: cosine similarity,
//! ranking metrics, CSLS and the blocked top-k/argmax APIs must be
//! bit-identical serial vs parallel, and the blocked APIs must agree with
//! naive full-sort references.

use sdea_eval::{
    argmax_cols, argmax_rows, argsort_rows_desc, cosine_matrix, csls_rescale, evaluate_ranking,
    top_k_indices, top_k_rows,
};
use sdea_tensor::{with_thread_budget, Rng, Tensor};

fn embeddings(n: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    Tensor::rand_normal(&[n, d], 1.0, &mut rng)
}

#[test]
fn cosine_matrix_bitwise_equal_across_budgets() {
    let a = embeddings(400, 48, 1);
    let b = embeddings(370, 48, 2);
    let serial = with_thread_budget(1, || cosine_matrix(&a, &b));
    for budget in [2, 8] {
        let par = with_thread_budget(budget, || cosine_matrix(&a, &b));
        assert_eq!(serial.data(), par.data(), "budget {budget}");
    }
}

#[test]
fn evaluate_ranking_bitwise_equal_across_budgets() {
    let a = embeddings(250, 32, 3);
    let b = embeddings(250, 32, 4);
    let sim = cosine_matrix(&a, &b);
    let gold: Vec<usize> = (0..250).collect();
    let serial = with_thread_budget(1, || evaluate_ranking(&sim, &gold));
    let par = with_thread_budget(8, || evaluate_ranking(&sim, &gold));
    assert_eq!(serial, par);
}

#[test]
fn csls_bitwise_equal_across_budgets() {
    let a = embeddings(150, 24, 5);
    let b = embeddings(180, 24, 6);
    let sim = cosine_matrix(&a, &b);
    let serial = with_thread_budget(1, || csls_rescale(&sim, 10));
    let par = with_thread_budget(8, || csls_rescale(&sim, 10));
    assert_eq!(serial.data(), par.data());
}

#[test]
fn top_k_rows_matches_naive_full_sort() {
    let sim = embeddings(120, 333, 7);
    let got = with_thread_budget(8, || top_k_rows(&sim, 10));
    for (i, top) in got.iter().enumerate() {
        let row = sim.row(i);
        let mut idx: Vec<usize> = (0..333).collect();
        idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
        assert_eq!(*top, idx[..10].to_vec(), "row {i}");
        assert_eq!(*top, top_k_indices(row, 10), "row {i} vs scalar api");
    }
}

#[test]
fn argmax_apis_match_naive_and_are_budget_invariant() {
    // 517 columns spans multiple fixed-width column blocks.
    let sim = embeddings(90, 517, 8);
    let (r1, c1) = with_thread_budget(1, || (argmax_rows(&sim), argmax_cols(&sim)));
    let (r8, c8) = with_thread_budget(8, || (argmax_rows(&sim), argmax_cols(&sim)));
    assert_eq!(r1, r8);
    assert_eq!(c1, c8);
    for (i, &got) in r1.iter().enumerate() {
        let row = sim.row(i);
        let naive = (0..517).max_by(|&a, &b| row[a].total_cmp(&row[b]).then(b.cmp(&a))).unwrap();
        assert_eq!(got, naive, "row {i}");
    }
    for (j, &got) in c1.iter().enumerate() {
        let naive = (0..90)
            .max_by(|&a, &b| sim.at2(a, j).total_cmp(&sim.at2(b, j)).then(b.cmp(&a)))
            .unwrap();
        assert_eq!(got, naive, "col {j}");
    }
}

#[test]
fn argsort_rows_budget_invariant_and_complete() {
    let sim = embeddings(80, 140, 9);
    let s1 = with_thread_budget(1, || argsort_rows_desc(&sim));
    let s8 = with_thread_budget(8, || argsort_rows_desc(&sim));
    assert_eq!(s1, s8);
    for (i, order) in s1.iter().enumerate() {
        assert_eq!(order.len(), 140);
        let row = sim.row(i);
        for w in order.windows(2) {
            assert!(row[w[0]] >= row[w[1]], "row {i} not descending");
        }
    }
}
