//! The ratcheted baseline: committed per-crate panic-budget counts that may
//! only decrease.
//!
//! `lint_baseline.toml` is a deliberately tiny TOML subset — one
//! `[panic_budget]` table of `crate = count` integers — parsed and written
//! by hand so the linter stays dependency-free. The ratchet direction is
//! asymmetric: a run where a crate's live count exceeds its baseline fails
//! CI, a run where it undershoots passes and prints a note suggesting
//! `--update-baseline`, which rewrites the file (it refuses to launder an
//! increase; raising a budget on purpose means editing the committed file
//! in a reviewed diff).

use std::collections::BTreeMap;

/// Parsed `lint_baseline.toml`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-crate counts of `unwrap()`/`expect(`/`panic!`/`todo!` in
    /// non-test code.
    pub panic_budget: BTreeMap<String, usize>,
}

/// Parses the TOML subset. Unknown sections or malformed lines are hard
/// errors — the file is machine-written and any drift means trouble.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut b = Baseline::default();
    let mut in_budget = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |m: &str| format!("lint_baseline.toml:{}: {m} ({raw:?})", i + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_budget = section.trim() == "panic_budget";
            if !in_budget {
                return Err(at("unknown section"));
            }
            continue;
        }
        if !in_budget {
            return Err(at("entry outside [panic_budget]"));
        }
        let (key, value) = line.split_once('=').ok_or_else(|| at("expected `crate = count`"))?;
        let count: usize =
            value.trim().parse().map_err(|_| at("count must be a non-negative integer"))?;
        b.panic_budget.insert(key.trim().trim_matches('"').to_string(), count);
    }
    Ok(b)
}

/// Renders the baseline in the exact shape [`parse`] reads back.
pub fn render(b: &Baseline) -> String {
    let mut out = String::from(
        "# Ratcheted panic budget, enforced by `sdea-lint` (rule P-PANIC-BUDGET).\n\
         # Counts of unwrap()/expect(/panic!/todo! in non-test code, per crate.\n\
         # They may only decrease; refresh with:\n\
         #     cargo run --release -p sdea-lint -- --update-baseline\n\
         # Raising a budget on purpose means editing this file in a reviewed diff.\n\
         \n[panic_budget]\n",
    );
    for (k, v) in &b.panic_budget {
        out.push_str(&format!("{k} = {v}\n"));
    }
    out
}

/// Outcome of comparing live counts against the committed baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Crates over budget: `(crate, live, baseline)` — these fail the run.
    pub exceeded: Vec<(String, usize, usize)>,
    /// Crates under budget: `(crate, live, baseline)` — notes only.
    pub improved: Vec<(String, usize, usize)>,
    /// Scanned crates with no baseline entry at all: `(crate, live)` —
    /// these fail the run with a dedicated "missing from baseline" message
    /// (not a generic over-budget one), pointing at `--update-baseline`.
    /// A new workspace crate must be enrolled explicitly; treating it as
    /// budget-zero made the failure read like a regression in the crate.
    pub missing: Vec<(String, usize)>,
}

/// Ratchet check: every crate's live count must be at or below its
/// baseline. A crate with no baseline entry is reported in
/// [`RatchetReport::missing`] — an enrollment error, distinct from an
/// over-budget regression (an explicit `crate = 0` entry stays on the
/// exceeded path).
pub fn check(live: &BTreeMap<String, usize>, base: &Baseline) -> RatchetReport {
    let mut r = RatchetReport::default();
    for (k, &n) in live {
        match base.panic_budget.get(k).copied() {
            None => r.missing.push((k.clone(), n)),
            Some(allowed) if n > allowed => r.exceeded.push((k.clone(), n, allowed)),
            Some(allowed) if n < allowed => r.improved.push((k.clone(), n, allowed)),
            Some(_) => {}
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn render_parse_round_trips() {
        let b = Baseline { panic_budget: counts(&[("core", 17), ("tensor", 3), ("root", 0)]) };
        assert_eq!(parse(&render(&b)).unwrap(), b);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("[panic_budget]\ncore = seventeen\n").is_err());
        assert!(parse("[other_section]\n").is_err());
        assert!(parse("core = 1\n").is_err(), "entry before any section");
    }

    #[test]
    fn ratchet_directions() {
        let base = Baseline { panic_budget: counts(&[("core", 5), ("eval", 2)]) };
        let r = check(&counts(&[("core", 6), ("eval", 1), ("newcrate", 1)]), &base);
        assert_eq!(r.exceeded, vec![("core".to_string(), 6, 5)]);
        assert_eq!(r.improved, vec![("eval".to_string(), 1, 2)]);
        assert_eq!(r.missing, vec![("newcrate".to_string(), 1)]);
    }

    #[test]
    fn explicit_zero_entry_is_enforced_not_missing() {
        // `crate = 0` means "enrolled with zero budget": an overage is a
        // regression, not an enrollment gap.
        let base = Baseline { panic_budget: counts(&[("strict", 0)]) };
        let r = check(&counts(&[("strict", 1)]), &base);
        assert_eq!(r.exceeded, vec![("strict".to_string(), 1, 0)]);
        assert!(r.missing.is_empty());
    }

    #[test]
    fn clean_unenrolled_crate_is_still_missing() {
        // Even a zero-count crate must be enrolled, or adding its first
        // unwrap later would silently become an over-budget failure.
        let base = Baseline::default();
        let r = check(&counts(&[("newcrate", 0)]), &base);
        assert_eq!(r.missing, vec![("newcrate".to_string(), 0)]);
        assert!(r.exceeded.is_empty());
    }

    #[test]
    fn equal_counts_are_silent() {
        let base = Baseline { panic_budget: counts(&[("core", 5)]) };
        let r = check(&counts(&[("core", 5)]), &base);
        assert!(r.exceeded.is_empty() && r.improved.is_empty());
    }
}
