//! `sdea-lint` — the workspace invariant checker. Exits nonzero with
//! `file:line: rule-id` diagnostics when any invariant is violated. See
//! `sdea-lint --help`, `--list-rules`, and DESIGN.md §11.

#![forbid(unsafe_code)]

use sdea_lint::{workspace, RULES};
use std::path::PathBuf;

const USAGE: &str = "\
sdea-lint: static invariant checker for the SDEA workspace

USAGE:
    sdea-lint [OPTIONS]

OPTIONS:
    --root <DIR>         workspace root (default: walk up from cwd to the
                         first Cargo.toml containing [workspace])
    --baseline <FILE>    ratchet file (default: <root>/lint_baseline.toml)
    --update-baseline    rewrite the baseline when counts decreased or new
                         crates appeared; refuses to record an increase
    --env-registry <F>   env-var registry (default: <root>/env_registry.toml)
    --obs-registry <F>   obs-name registry (default: <root>/obs_registry.toml)
    --blob-registry <F>  blob-kind registry (default: <root>/blob_registry.toml)
    --json               write machine-readable findings to
                         <root>/results/lint_report.json
    --json-out <FILE>    like --json, to an explicit path
    --list-rules         print the rule table and exit
    -h, --help           this message

EXIT CODES:
    0  clean            1  violations found            2  usage or IO error
";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut opts = workspace::Options::default();
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--env-registry" => match args.next() {
                Some(v) => opts.env_registry = Some(PathBuf::from(v)),
                None => return usage_error("--env-registry needs a value"),
            },
            "--obs-registry" => match args.next() {
                Some(v) => opts.obs_registry = Some(PathBuf::from(v)),
                None => return usage_error("--obs-registry needs a value"),
            },
            "--blob-registry" => match args.next() {
                Some(v) => opts.blob_registry = Some(PathBuf::from(v)),
                None => return usage_error("--blob-registry needs a value"),
            },
            "--json" => json = true,
            "--json-out" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage_error("--json-out needs a value"),
            },
            "--update-baseline" => update = true,
            "--list-rules" => {
                list_rules();
                return 0;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let root = match root
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| workspace::find_root(&cwd)))
    {
        Some(r) => r,
        None => {
            eprintln!(
                "sdea-lint: no workspace root found (no Cargo.toml with [workspace]); use --root"
            );
            return 2;
        }
    };
    let baseline = baseline.unwrap_or_else(|| root.join("lint_baseline.toml"));
    let res = match workspace::run_with(&root, &baseline, update, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sdea-lint: {e}");
            return 2;
        }
    };
    if json || json_out.is_some() {
        let out = json_out.unwrap_or_else(|| root.join("results").join("lint_report.json"));
        if let Err(e) = workspace::write_json_report(&out, &res) {
            eprintln!("sdea-lint: writing {}: {e}", out.display());
            return 2;
        }
        eprintln!("sdea-lint: report written to {}", out.display());
    }
    for d in &res.diags {
        println!("{d}");
    }
    for n in &res.notes {
        eprintln!("sdea-lint: note: {n}");
    }
    if res.diags.is_empty() {
        eprintln!(
            "sdea-lint: clean ({} files, {} rules, {} crates in panic budget)",
            res.files_scanned,
            RULES.len(),
            res.panic_counts.len()
        );
        0
    } else {
        eprintln!(
            "sdea-lint: {} violation(s) across {} file(s); see DESIGN.md \u{a7}11",
            res.diags.len(),
            res.diags
                .iter()
                .map(|d| d.file.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
        1
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("sdea-lint: {msg}");
    eprint!("{USAGE}");
    2
}

fn list_rules() {
    println!("{:<16} {:<28} DESCRIPTION", "RULE", "SCOPE");
    for r in RULES {
        let mut first = true;
        for chunk in wrap(r.description, 70) {
            if first {
                println!("{:<16} {:<28} {chunk}", r.id, r.scope);
                first = false;
            } else {
                println!("{:<16} {:<28} {chunk}", "", "");
            }
        }
    }
}

/// Greedy word wrap for the rule table.
fn wrap(text: &str, width: usize) -> Vec<String> {
    let mut lines = Vec::new();
    let mut cur = String::new();
    for word in text.split_whitespace() {
        if !cur.is_empty() && cur.len() + 1 + word.len() > width {
            lines.push(std::mem::take(&mut cur));
        }
        if !cur.is_empty() {
            cur.push(' ');
        }
        cur.push_str(word);
    }
    if !cur.is_empty() {
        lines.push(cur);
    }
    lines
}
