//! The cross-file contract rules: registry-backed workspace analyses over
//! the [`WorkspaceModel`].
//!
//! Unlike the per-file rules in [`crate::rules`], these only make sense
//! with the whole workspace in hand: an env variable read in `bench` and
//! documented in README, an obs counter name that must not collide with a
//! near-duplicate defined three crates away, a blob-kind byte tag whose
//! uniqueness is global by definition. Each rule checks live extraction
//! against a committed registry, in both directions — an unregistered name
//! fails the run, and so does a dead registry entry, so the registries can
//! never drift from the code they describe.

use crate::model::{ConfigField, EnvAccess, ObsKind, WorkspaceModel, FPRINT_FN};
use crate::registry::{BlobRegistry, EnvRegistry, ObsRegistry};
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// The one file allowed to touch `std::env` directly: the strict-helper
/// implementation itself.
pub const ENV_IMPL_FILE: &str = "crates/obs/src/env.rs";

/// The loaded registries plus the paths diagnostics anchor to.
#[derive(Debug, Default)]
pub struct Registries {
    pub env: EnvRegistry,
    pub env_path: String,
    pub obs: ObsRegistry,
    pub obs_path: String,
    pub blob: BlobRegistry,
    pub blob_path: String,
}

/// Runs all contract rules. Diagnostics anchor to the offending use site
/// when the code is wrong and to the registry file when the registry is.
pub fn check(model: &WorkspaceModel, regs: &Registries) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    env_strict(model, &mut out);
    env_registry(model, regs, &mut out);
    obs_names(model, regs, &mut out);
    blob_kinds(model, regs, &mut out);
    fingerprint_coverage(model, &mut out);
    out
}

// ---------------------------------------------------------------- R-ENV-STRICT

fn env_strict(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    for site in &model.env_sites {
        if site.prod && site.access == EnvAccess::Raw && site.file != ENV_IMPL_FILE {
            out.push(Diagnostic {
                file: site.file.clone(),
                line: site.line,
                rule: "R-ENV-STRICT",
                msg: format!(
                    "raw std::env read of `{}`: a malformed value must be a hard startup error, \
                     not a silent default; go through sdea_obs::env (parse_or_exit, bool_or_exit, \
                     enum_or_exit, string_or_exit)",
                    site.var
                ),
            });
        }
    }
}

// -------------------------------------------------------------- R-ENV-REGISTRY

fn env_registry(model: &WorkspaceModel, regs: &Registries, out: &mut Vec<Diagnostic>) {
    // first production site per variable, and the set of crates reading it
    let mut first: BTreeMap<&str, (&str, usize)> = BTreeMap::new();
    let mut crates_of: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for s in model.env_sites.iter().filter(|s| s.prod) {
        first.entry(&s.var).or_insert((&s.file, s.line));
        crates_of.entry(&s.var).or_default().insert(&s.crate_key);
    }
    for (var, (file, line)) in &first {
        if !regs.env.vars.contains_key(*var) {
            out.push(Diagnostic {
                file: file.to_string(),
                line: *line,
                rule: "R-ENV-REGISTRY",
                msg: format!(
                    "`{var}` is read here but missing from the env registry: add a \
                     `{var} = \"type | default | owner\"` entry and document it in README.md"
                ),
            });
        }
    }
    for (var, entry) in &regs.env.vars {
        match crates_of.get(var.as_str()) {
            None => out.push(Diagnostic {
                file: regs.env_path.clone(),
                line: entry.line,
                rule: "R-ENV-REGISTRY",
                msg: format!(
                    "dead registry entry: `{var}` is registered but never read in production \
                     code; remove the entry (and its README row) or wire the variable up"
                ),
            }),
            Some(crates) if !crates.contains(entry.owner.as_str()) => out.push(Diagnostic {
                file: regs.env_path.clone(),
                line: entry.line,
                rule: "R-ENV-REGISTRY",
                msg: format!(
                    "stale owner: `{var}` is registered to crate `{}` but its read sites live \
                     in {:?}",
                    entry.owner, crates
                ),
            }),
            Some(_) => {}
        }
        if !model.readme_env.contains(var) {
            out.push(Diagnostic {
                file: regs.env_path.clone(),
                line: entry.line,
                rule: "R-ENV-REGISTRY",
                msg: format!("`{var}` is registered but not documented in README.md"),
            });
        }
    }
    for var in &model.readme_env {
        if !regs.env.vars.contains_key(var) {
            out.push(Diagnostic {
                file: "README.md".to_string(),
                line: 1,
                rule: "R-ENV-REGISTRY",
                msg: format!(
                    "README.md documents `{var}` but the env registry has no such entry: \
                     register it or drop the stale documentation"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- R-OBS-NAMES

/// Does `owner` (a crate key, or a path prefix when it contains `/`) cover
/// a use site in `crate_key` / `file`?
fn owner_matches(owner: &str, crate_key: &str, file: &str) -> bool {
    if owner.contains('/') {
        file.starts_with(owner)
    } else {
        crate_key == owner
    }
}

fn obs_names(model: &WorkspaceModel, regs: &Registries, out: &mut Vec<Diagnostic>) {
    let mut used: BTreeMap<(ObsKind, &str), Vec<&crate::model::ObsSite>> = BTreeMap::new();
    for s in model.obs_sites.iter().filter(|s| s.prod) {
        used.entry((s.kind, &s.name)).or_default().push(s);
    }
    for ((kind, name), sites) in &used {
        match regs.obs.table(*kind).get(*name) {
            None => {
                let s = sites[0];
                out.push(Diagnostic {
                    file: s.file.clone(),
                    line: s.line,
                    rule: "R-OBS-NAMES",
                    msg: format!(
                        "unregistered {} name `{name}`: every metric name is committed in the \
                         obs registry with its owner so renames and collisions are reviewed",
                        kind.label()
                    ),
                });
            }
            Some(entry) => {
                for s in sites {
                    if !owner_matches(&entry.owner, &s.crate_key, &s.file) {
                        out.push(Diagnostic {
                            file: s.file.clone(),
                            line: s.line,
                            rule: "R-OBS-NAMES",
                            msg: format!(
                                "{} `{name}` is owned by `{}` but recorded here from crate \
                                 `{}`: dotted prefixes map to one owning module",
                                kind.label(),
                                entry.owner,
                                s.crate_key
                            ),
                        });
                    }
                }
            }
        }
    }
    // dead entries, prefix consistency and near-duplicates over the registry
    let mut prefix_owner: BTreeMap<&str, (&str, &str)> = BTreeMap::new();
    for kind in [ObsKind::Span, ObsKind::Counter, ObsKind::Histogram] {
        let table = regs.obs.table(kind);
        for (name, entry) in table {
            if !used.contains_key(&(kind, name.as_str())) {
                out.push(Diagnostic {
                    file: regs.obs_path.clone(),
                    line: entry.line,
                    rule: "R-OBS-NAMES",
                    msg: format!(
                        "dead registry entry: {} `{name}` is registered but never recorded in \
                         production code",
                        kind.label()
                    ),
                });
            }
            let prefix = name.split('.').next().unwrap_or(name);
            match prefix_owner.get(prefix) {
                None => {
                    prefix_owner.insert(prefix, (name, &entry.owner));
                }
                Some((other, owner)) if *owner != entry.owner => {
                    out.push(Diagnostic {
                        file: regs.obs_path.clone(),
                        line: entry.line,
                        rule: "R-OBS-NAMES",
                        msg: format!(
                            "prefix `{prefix}.*` has two owners: `{name}` -> `{}` but `{other}` \
                             -> `{owner}`; one dotted prefix, one owning module",
                            entry.owner
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        // near-duplicates fork metrics silently: `ckpt.write` and
        // `ckpt.writes` as the same kind would each collect half the data
        let names: Vec<&String> = table.keys().collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                if edit_distance_one(a, b) {
                    out.push(Diagnostic {
                        file: regs.obs_path.clone(),
                        line: table[b.as_str()].line,
                        rule: "R-OBS-NAMES",
                        msg: format!(
                            "{} names `{a}` and `{b}` differ by one edit: near-duplicates \
                             silently fork a metric; pick one spelling",
                            kind.label()
                        ),
                    });
                }
            }
        }
    }
}

/// True when the Levenshtein distance between `a` and `b` is exactly 1.
fn edit_distance_one(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    match long.len() - short.len() {
        0 => short.iter().zip(long).filter(|(x, y)| x != y).count() == 1,
        1 => {
            // one insertion: skip the first mismatch in the longer string
            let mut i = 0;
            while i < short.len() && short[i] == long[i] {
                i += 1;
            }
            short[i..] == long[i + 1..]
        }
        _ => false,
    }
}

// ---------------------------------------------------------------- R-BLOB-KIND

fn blob_kinds(model: &WorkspaceModel, regs: &Registries, out: &mut Vec<Diagnostic>) {
    let prod: Vec<_> = model.blob_sites.iter().filter(|s| s.prod).collect();
    let mut defs: BTreeMap<&str, Vec<&crate::model::BlobSite>> = BTreeMap::new();
    for s in &prod {
        if s.const_name.is_some() {
            defs.entry(&s.kind).or_default().push(s);
        }
    }
    for s in &prod {
        if !regs.blob.kinds.contains_key(&s.kind) {
            out.push(Diagnostic {
                file: s.file.clone(),
                line: s.line,
                rule: "R-BLOB-KIND",
                msg: format!(
                    "unregistered blob kind `{}`: every 4-byte container tag is committed in \
                     the blob registry with its version and defining file",
                    s.kind
                ),
            });
        }
    }
    for (kind, sites) in &defs {
        if sites.len() > 1 {
            out.push(Diagnostic {
                file: sites[1].file.clone(),
                line: sites[1].line,
                rule: "R-BLOB-KIND",
                msg: format!(
                    "blob kind `{kind}` is defined more than once (also in {}:{}): kinds are \
                     globally unique so a header identifies exactly one format",
                    sites[0].file, sites[0].line
                ),
            });
        }
        for s in sites.iter().take(1) {
            let name = s.const_name.as_deref().unwrap_or_default();
            if crate::analysis::find_word(&model.test_code, name).is_empty() {
                out.push(Diagnostic {
                    file: s.file.clone(),
                    line: s.line,
                    rule: "R-BLOB-KIND",
                    msg: format!(
                        "blob kind `{kind}` (`{name}`) has no corruption/round-trip test \
                         referencing the constant: assert on `{name}` in a test so header \
                         validation is pinned"
                    ),
                });
            }
        }
    }
    for (kind, entry) in &regs.blob.kinds {
        match defs.get(kind.as_str()) {
            None => out.push(Diagnostic {
                file: regs.blob_path.clone(),
                line: entry.line,
                rule: "R-BLOB-KIND",
                msg: format!(
                    "dead registry entry: blob kind `{kind}` has no production `const … = \
                     b\"{kind}\"` definition"
                ),
            }),
            Some(sites) if sites.iter().all(|s| s.file != entry.file) => out.push(Diagnostic {
                file: regs.blob_path.clone(),
                line: entry.line,
                rule: "R-BLOB-KIND",
                msg: format!(
                    "blob kind `{kind}` is registered to {} but defined in {}",
                    entry.file, sites[0].file
                ),
            }),
            Some(_) => {}
        }
    }
}

// ----------------------------------------------------------- R-FPRINT-COVERAGE

/// Is `field` referenced as `.field` (word-bounded) in the fingerprint body?
fn dot_referenced(body: &str, field: &str) -> bool {
    crate::analysis::find_word(body, field).iter().any(|&p| p > 0 && body.as_bytes()[p - 1] == b'.')
}

fn fingerprint_coverage(model: &WorkspaceModel, out: &mut Vec<Diagnostic>) {
    if model.config_fields.is_empty() {
        return;
    }
    if model.fingerprint_body.is_empty() {
        out.push(Diagnostic {
            file: FPRINT_FN.0.to_string(),
            line: 1,
            rule: "R-FPRINT-COVERAGE",
            msg: format!(
                "config structs found but no `fn {}` body: the checkpoint fingerprint must \
                 cover every result-shaping field",
                FPRINT_FN.1
            ),
        });
        return;
    }
    for ConfigField { file, line, strukt, name, excluded } in &model.config_fields {
        let covered = dot_referenced(&model.fingerprint_body, name);
        if !covered && !excluded {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: "R-FPRINT-COVERAGE",
                msg: format!(
                    "public field `{strukt}.{name}` neither flows into {} nor carries a \
                     `// fingerprint: excluded(<reason>)` justification: an uncovered \
                     result-shaping field lets two different configs resume each other's \
                     checkpoints",
                    FPRINT_FN.1
                ),
            });
        }
        if covered && *excluded {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: "R-FPRINT-COVERAGE",
                msg: format!(
                    "`{strukt}.{name}` is annotated `fingerprint: excluded` but the \
                     fingerprint references it: drop the stale annotation"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::registry::{parse_blob, parse_env, parse_obs};

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        let mut m = WorkspaceModel::default();
        for (rel, src) in files {
            m.absorb(&Analysis::new(rel, src));
        }
        m
    }

    fn regs(env: &str, obs: &str, blob: &str) -> Registries {
        Registries {
            env: parse_env(env).unwrap(),
            env_path: "env_registry.toml".into(),
            obs: parse_obs(obs).unwrap(),
            obs_path: "obs_registry.toml".into(),
            blob: parse_blob(blob).unwrap(),
            blob_path: "blob_registry.toml".into(),
        }
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn raw_env_read_fires_and_helper_impl_is_exempt() {
        let src = "pub fn f() { let _ = std::env::var(\"SDEA_ZETA\"); }\n";
        let m = model(&[("crates/bench/src/x.rs", src)]);
        let d = check(&m, &Registries::default());
        assert!(rules_of(&d).contains(&"R-ENV-STRICT"), "{d:?}");
        let m = model(&[("crates/obs/src/env.rs", src)]);
        let d = check(&m, &Registries::default());
        assert!(!rules_of(&d).contains(&"R-ENV-STRICT"), "{d:?}");
    }

    #[test]
    fn env_registry_both_directions() {
        let src = "use sdea_obs::env::parse_or_exit;\n\
                   pub fn f() { let _: Option<u32> = parse_or_exit(\"SDEA_USED\", \"int\"); }\n";
        let m = {
            let mut m = model(&[("crates/core/src/x.rs", src)]);
            m.set_readme("| `SDEA_USED` |");
            m
        };
        // complete registry: clean
        let r = regs("[env]\nSDEA_USED = \"u32 | unset | core\"\n", "", "[blob]\n");
        let mut m2 = model(&[("crates/core/src/x.rs", src)]);
        m2.set_readme("`SDEA_USED`");
        assert!(check(&m2, &r).is_empty(), "{:?}", check(&m2, &r));
        // unregistered read + dead entry + missing README row
        let r = regs("[env]\nSDEA_DEAD = \"u32 | unset | core\"\n", "", "[blob]\n");
        let d = check(&m, &r);
        assert!(d.iter().any(|d| d.msg.contains("missing from the env registry")), "{d:?}");
        assert!(d.iter().any(|d| d.msg.contains("dead registry entry")), "{d:?}");
        assert!(d.iter().any(|d| d.msg.contains("not documented in README.md")), "{d:?}");
    }

    #[test]
    fn env_registry_flags_stale_owner_and_stale_readme() {
        let src = "use sdea_obs::env::parse_or_exit;\n\
                   pub fn f() { let _: Option<u32> = parse_or_exit(\"SDEA_USED\", \"int\"); }\n";
        let mut m = model(&[("crates/core/src/x.rs", src)]);
        m.set_readme("`SDEA_USED` and `SDEA_GHOST`");
        let r = regs("[env]\nSDEA_USED = \"u32 | unset | serve\"\n", "", "[blob]\n");
        let d = check(&m, &r);
        assert!(d.iter().any(|d| d.msg.contains("stale owner")), "{d:?}");
        assert!(d.iter().any(|d| d.msg.contains("stale documentation")), "{d:?}");
    }

    #[test]
    fn obs_names_ownership_and_near_duplicates() {
        let src = "pub fn f() {\n\
                       let _s = sdea_obs::span(\"serve.handle\");\n\
                       sdea_obs::add(\"serve.requests\", 1);\n\
                   }\n";
        let m = model(&[("crates/core/src/x.rs", src)]);
        let r = regs(
            "[env]\n",
            "[span]\n\"serve.handle\" = \"serve\"\n\
             [counter]\n\"serve.requests\" = \"serve\"\n\"serve.request\" = \"serve\"\n",
            "[blob]\n",
        );
        let d = check(&m, &r);
        // both names recorded from core but owned by serve
        assert_eq!(d.iter().filter(|d| d.msg.contains("owned by `serve`")).count(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.msg.contains("differ by one edit")), "{d:?}");
        assert!(
            d.iter().any(|d| d.rule == "R-OBS-NAMES" && d.msg.contains("dead registry entry")),
            "{d:?}"
        );
    }

    #[test]
    fn obs_unregistered_name_fires_and_clean_passes() {
        let src = "pub fn f() { sdea_obs::add(\"eval.cells\", 1); }\n";
        let m = model(&[("crates/eval/src/x.rs", src)]);
        let d = check(&m, &Registries::default());
        assert!(d.iter().any(|d| d.msg.contains("unregistered counter")), "{d:?}");
        let r = regs("[env]\n", "[counter]\n\"eval.cells\" = \"eval\"\n", "[blob]\n");
        assert!(check(&m, &r).is_empty(), "{:?}", check(&m, &r));
    }

    #[test]
    fn obs_prefix_with_two_owners_fires() {
        let r = regs(
            "[env]\n",
            "[span]\n\"serve.a\" = \"serve\"\n[counter]\n\"serve.b\" = \"core\"\n",
            "[blob]\n",
        );
        let d = check(&WorkspaceModel::default(), &r);
        assert!(d.iter().any(|d| d.msg.contains("two owners")), "{d:?}");
    }

    #[test]
    fn module_scoped_owner_uses_path_prefix() {
        let src = "pub fn f() { sdea_obs::add(\"rerank.steps\", 1); }\n";
        let rm = regs(
            "[env]\n",
            "[counter]\n\"rerank.steps\" = \"crates/core/src/rerank\"\n",
            "[blob]\n",
        );
        let inside = model(&[("crates/core/src/rerank.rs", src)]);
        assert!(check(&inside, &rm).is_empty(), "{:?}", check(&inside, &rm));
        let outside = model(&[("crates/core/src/trainer.rs", src)]);
        assert!(
            check(&outside, &rm).iter().any(|d| d.msg.contains("owned by")),
            "{:?}",
            check(&outside, &rm)
        );
    }

    #[test]
    fn blob_kind_full_lifecycle() {
        let good = "pub const K1: &[u8; 4] = b\"SDAB\";\n\
                    #[cfg(test)]\nmod tests {\n    #[test]\n    fn rt() { assert_eq!(super::K1.len(), 4); }\n}\n";
        let m = model(&[("crates/tensor/src/x.rs", good)]);
        let r = regs("[env]\n", "", "[blob]\nSDAB = \"v1 | crates/tensor/src/x.rs\"\n");
        assert!(check(&m, &r).is_empty(), "{:?}", check(&m, &r));
        // unregistered
        let d = check(&m, &regs("[env]\n", "", "[blob]\n"));
        assert!(d.iter().any(|d| d.msg.contains("unregistered blob kind")), "{d:?}");
        // dead entry + wrong file
        let r2 = regs(
            "[env]\n",
            "",
            "[blob]\nSDAB = \"v1 | crates/core/src/y.rs\"\nSDZZ = \"v1 | crates/core/src/z.rs\"\n",
        );
        let d = check(&m, &r2);
        assert!(d.iter().any(|d| d.msg.contains("registered to crates/core/src/y.rs")), "{d:?}");
        assert!(d.iter().any(|d| d.msg.contains("dead registry entry")), "{d:?}");
    }

    #[test]
    fn blob_kind_duplicate_and_untested_fire() {
        let a = "pub const KA: &[u8; 4] = b\"SDAB\";\n";
        let b = "pub const KB: &[u8; 4] = b\"SDAB\";\n";
        let m = model(&[("crates/tensor/src/a.rs", a), ("crates/core/src/b.rs", b)]);
        let r = regs("[env]\n", "", "[blob]\nSDAB = \"v1 | crates/tensor/src/a.rs\"\n");
        let d = check(&m, &r);
        assert!(d.iter().any(|d| d.msg.contains("defined more than once")), "{d:?}");
        assert!(d.iter().any(|d| d.msg.contains("no corruption/round-trip test")), "{d:?}");
    }

    #[test]
    fn fingerprint_coverage_and_stale_exclusion() {
        let config = "pub struct SdeaConfig {\n\
                          pub dim: usize,\n\
                          pub missing: usize,\n\
                          // fingerprint: excluded(execution knob)\n\
                          pub threads: usize,\n\
                          // fingerprint: excluded(stale)\n\
                          pub stale: usize,\n\
                      }\n";
        let ckpt = "pub fn config_fingerprint(cfg: &SdeaConfig) -> u64 {\n\
                        let s = format!(\"{} {}\", cfg.dim, cfg.stale);\n\
                        s.len() as u64\n\
                    }\n";
        let m = model(&[
            ("crates/core/src/config.rs", config),
            ("crates/core/src/checkpoint.rs", ckpt),
        ]);
        let d = check(&m, &Registries::default());
        assert!(d.iter().any(|d| d.msg.contains("`SdeaConfig.missing`")), "{d:?}");
        assert!(d.iter().any(|d| d.msg.contains("stale annotation")), "{d:?}");
        assert!(!d.iter().any(|d| d.msg.contains("`SdeaConfig.dim`")), "{d:?}");
        assert!(!d.iter().any(|d| d.msg.contains("`SdeaConfig.threads`")), "{d:?}");
    }

    #[test]
    fn edit_distance_one_cases() {
        assert!(edit_distance_one("ckpt.write", "ckpt.writes"));
        assert!(edit_distance_one("serve.request", "serve.requests"));
        assert!(edit_distance_one("a.b", "a.c"));
        assert!(!edit_distance_one("same.name", "same.name"));
        assert!(!edit_distance_one("ckpt.load", "ckpt.save"));
        assert!(!edit_distance_one("eval.csls", "eval.csls_blocked"));
    }
}
