//! The cross-file workspace model: names extracted from every analyzed
//! source file, accumulated over one lint run and handed to the contract
//! rules ([`crate::contracts`]).
//!
//! Per-file rules see one [`Analysis`] at a time; the contract rules need
//! the whole workspace at once — every `SDEA_*` env read, every obs
//! span/counter/histogram name, every `b"SD.."` blob-kind constant and the
//! config structs feeding the checkpoint fingerprint. [`WorkspaceModel::absorb`]
//! pulls those out of each file's literal channel (the lexer records every
//! string literal's contents anchored to its blanked position, so a name
//! mentioned in a comment or a doc example never enrolls) and the checks
//! then run against the committed registries.

use crate::analysis::{find_word, skip_balanced, Analysis};
use std::collections::BTreeSet;

/// How an `SDEA_*` literal reaches the process environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvAccess {
    /// Through a `sdea_obs::env` strict helper (`parse_or_exit`, …).
    Strict,
    /// Through `std::env` directly (`var`, `var_os`, `set_var`, …).
    Raw,
    /// Any other position: a comparison, a table entry, a format argument.
    Mention,
}

/// One `SDEA_*` environment-variable literal site.
#[derive(Debug, Clone)]
pub struct EnvSite {
    pub file: String,
    /// 1-based line for diagnostics.
    pub line: usize,
    pub crate_key: String,
    pub var: String,
    pub access: EnvAccess,
    /// On a production line (not vendor/test/example/`#[cfg(test)]`).
    pub prod: bool,
}

/// The three observability name kinds, matching the `sdea_obs` API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsKind {
    Span,
    Counter,
    Histogram,
}

impl ObsKind {
    pub fn label(self) -> &'static str {
        match self {
            ObsKind::Span => "span",
            ObsKind::Counter => "counter",
            ObsKind::Histogram => "histogram",
        }
    }
}

/// One obs-name literal site (`span("eval.csls")`, `add("ckpt.writes", n)`…).
#[derive(Debug, Clone)]
pub struct ObsSite {
    pub file: String,
    pub line: usize,
    pub crate_key: String,
    pub kind: ObsKind,
    pub name: String,
    pub prod: bool,
}

/// One `b"SD.."` blob-kind literal site.
#[derive(Debug, Clone)]
pub struct BlobSite {
    pub file: String,
    pub line: usize,
    pub kind: String,
    /// The constant name when this literal is a `const NAME: &[u8; 4] =`
    /// definition; `None` for inline uses.
    pub const_name: Option<String>,
    pub prod: bool,
}

/// One public field of a fingerprint-enrolled config struct.
#[derive(Debug, Clone)]
pub struct ConfigField {
    pub file: String,
    pub line: usize,
    /// `SdeaConfig`, `IndexConfig`, `RerankConfig`.
    pub strukt: &'static str,
    pub name: String,
    /// Carries a `// fingerprint: excluded(<reason>)` justification.
    pub excluded: bool,
}

/// The fingerprint-enrolled config structs and where they live.
pub const FPRINT_STRUCTS: &[(&str, &str)] = &[
    ("crates/core/src/config.rs", "SdeaConfig"),
    ("crates/core/src/config.rs", "RerankConfig"),
    ("crates/index/src/lib.rs", "IndexConfig"),
];

/// The fingerprint function whose body must mention every enrolled field.
pub const FPRINT_FN: (&str, &str) = ("crates/core/src/checkpoint.rs", "config_fingerprint");

/// Everything the contract rules need from a full workspace scan.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    pub env_sites: Vec<EnvSite>,
    pub obs_sites: Vec<ObsSite>,
    pub blob_sites: Vec<BlobSite>,
    pub config_fields: Vec<ConfigField>,
    /// Body text of the fingerprint function (empty if not seen).
    pub fingerprint_body: String,
    /// Concatenated non-production code lines of every scanned file — the
    /// corpus blob-kind test references are grepped from.
    pub test_code: String,
    /// `SDEA_*` tokens found in README.md (set via [`Self::set_readme`]).
    pub readme_env: BTreeSet<String>,
}

/// Strict helpers exported by `sdea_obs::env`; a call through one of these
/// satisfies `R-ENV-STRICT`.
const STRICT_HELPERS: &[&str] = &[
    "check_parse",
    "check_bool",
    "check_enum",
    "parse_or_exit",
    "bool_or_exit",
    "enum_or_exit",
    "string_or_exit",
];

/// Raw `std::env` accessors; a call through one of these violates
/// `R-ENV-STRICT` outside the env-helper implementation itself.
const RAW_ACCESSORS: &[&str] = &["var", "var_os", "set_var", "remove_var"];

impl WorkspaceModel {
    /// Extracts every contract-relevant name from one analyzed file.
    pub fn absorb(&mut self, a: &Analysis) {
        if a.is_vendor {
            return;
        }
        let obs_imports = obs_imports(&a.joined);
        for (off, lit) in a.literals_with_offsets() {
            let prod = a.is_prod_line(lit.line);
            if !prod {
                continue;
            }
            if !lit.byte_string && is_env_var_name(&lit.text) {
                self.env_sites.push(EnvSite {
                    file: a.rel.clone(),
                    line: lit.line + 1,
                    crate_key: a.crate_key.clone(),
                    var: lit.text.clone(),
                    access: classify_env(&a.joined, off),
                    prod,
                });
            }
            if !lit.byte_string {
                if let Some(kind) = obs_call(&a.joined, off, &obs_imports) {
                    self.obs_sites.push(ObsSite {
                        file: a.rel.clone(),
                        line: lit.line + 1,
                        crate_key: a.crate_key.clone(),
                        kind,
                        name: lit.text.clone(),
                        prod,
                    });
                }
            }
            if lit.byte_string && lit.text.len() == 4 && lit.text.starts_with("SD") {
                self.blob_sites.push(BlobSite {
                    file: a.rel.clone(),
                    line: lit.line + 1,
                    kind: lit.text.clone(),
                    const_name: const_name_before(&a.joined, off),
                    prod,
                });
            }
        }
        for (i, code) in a.clean.code_lines.iter().enumerate() {
            if !a.is_prod_line(i) {
                self.test_code.push_str(code);
                self.test_code.push('\n');
            }
        }
        for &(file, strukt) in FPRINT_STRUCTS {
            if a.rel == file {
                self.collect_fields(a, strukt);
            }
        }
        if a.rel == FPRINT_FN.0 {
            if let Some(body) = fn_body(&a.joined, FPRINT_FN.1) {
                self.fingerprint_body = body.to_string();
            }
        }
    }

    /// Records the `SDEA_*` tokens README.md documents.
    pub fn set_readme(&mut self, text: &str) {
        self.readme_env = env_tokens(text);
    }

    fn collect_fields(&mut self, a: &Analysis, strukt: &'static str) {
        let Some((open, close)) = struct_body(&a.joined, strukt) else { return };
        let body = &a.joined[open..close];
        let mut depth = 0i32;
        let mut line_start = 0usize;
        for (i, b) in body.bytes().enumerate() {
            match b {
                b'{' | b'(' | b'[' => depth += 1,
                b'}' | b')' | b']' => depth -= 1,
                b'\n' => line_start = i + 1,
                _ => {}
            }
            // a field declaration sits at the struct body's own depth (the
            // outer braces are excluded from `body`)
            if b == b':' && depth == 0 {
                let decl = body[line_start..i].trim_start();
                if let Some(rest) = decl.strip_prefix("pub ") {
                    let name: String = rest
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() && rest.trim() == name {
                        let line = a.line_of(open + i);
                        self.config_fields.push(ConfigField {
                            file: a.rel.clone(),
                            line: line + 1,
                            strukt,
                            name,
                            excluded: a.justified(line, "fingerprint: excluded"),
                        });
                    }
                }
            }
        }
    }
}

/// Exact `SDEA_*` variable-name literals (a sentence merely *containing* a
/// variable name — an error message, a log line — is not a read site).
pub fn is_env_var_name(text: &str) -> bool {
    text.len() > 5
        && text.starts_with("SDEA_")
        && text.bytes().all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// All exact `SDEA_*` tokens in free text (README cross-check).
pub fn env_tokens(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let b = text.as_bytes();
    for p in crate::analysis::find_all(text, "SDEA_") {
        if p > 0 && (b[p - 1].is_ascii_alphanumeric() || b[p - 1] == b'_') {
            continue;
        }
        let mut e = p + 5;
        while e < b.len() && (b[e].is_ascii_uppercase() || b[e].is_ascii_digit() || b[e] == b'_') {
            e += 1;
        }
        let tok = text[p..e].trim_end_matches('_');
        if tok.len() > 5 {
            out.insert(tok.to_string());
        }
    }
    out
}

/// The call path whose argument list the literal anchored at `anchor`
/// opens, e.g. `sdea_obs::env::parse_or_exit` for
/// `parse_or_exit::<usize>("SDEA_THREADS"`. Returns the `::`-separated
/// path and whether it was invoked as a method (`recv.name(`).
fn callee_path(joined: &str, anchor: usize) -> Option<(Vec<String>, bool)> {
    let b = joined.as_bytes();
    let mut i = anchor;
    // back over whitespace (multi-line calls put the literal on its own line)
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || b[i - 1] != b'(' {
        return None;
    }
    i -= 1;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    // optional turbofish between the callee and its parenthesis
    if i > 0 && b[i - 1] == b'>' {
        let open = joined[..i].rfind('<')?;
        i = open;
        if !joined[..i].ends_with("::") {
            return None;
        }
        i -= 2;
    }
    let mut segs: Vec<String> = Vec::new();
    loop {
        let mut s = i;
        while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
            s -= 1;
        }
        if s == i {
            return None;
        }
        segs.push(joined[s..i].to_string());
        i = s;
        if i >= 2 && &joined[i - 2..i] == "::" {
            i -= 2;
        } else {
            break;
        }
    }
    let method = i > 0 && b[i - 1] == b'.';
    segs.reverse();
    Some((segs, method))
}

/// Classifies how the env-var literal at `anchor` is accessed.
fn classify_env(joined: &str, anchor: usize) -> EnvAccess {
    let Some((segs, method)) = callee_path(joined, anchor) else { return EnvAccess::Mention };
    let Some(last) = segs.last() else { return EnvAccess::Mention };
    if !method && RAW_ACCESSORS.contains(&last.as_str()) {
        return EnvAccess::Raw;
    }
    if !method && STRICT_HELPERS.contains(&last.as_str()) {
        return EnvAccess::Strict;
    }
    EnvAccess::Mention
}

/// Identifiers a file imports from `sdea_obs` (`use sdea_obs::{span, add};`).
fn obs_imports(joined: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in joined.lines() {
        let t = line.trim_start();
        if t.starts_with("use sdea_obs") || t.starts_with("pub use sdea_obs") {
            for w in t.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
                if !w.is_empty() {
                    out.insert(w.to_string());
                }
            }
        }
    }
    out
}

/// Is the literal at `anchor` the name argument of an `sdea_obs`
/// span/counter/histogram call? Method calls (`store.add("lm.emb", …)`) and
/// local shadowing functions never qualify: the callee must be
/// `sdea_obs`-qualified or imported from it in this file.
fn obs_call(joined: &str, anchor: usize, imports: &BTreeSet<String>) -> Option<ObsKind> {
    let (segs, method) = callee_path(joined, anchor)?;
    if method {
        return None;
    }
    let last = segs.last()?.as_str();
    let kind = match last {
        "span" => ObsKind::Span,
        "counter" | "add" => ObsKind::Counter,
        "record" => ObsKind::Histogram,
        _ => return None,
    };
    let qualified = segs.iter().any(|s| s == "sdea_obs" || s == "obs");
    if qualified || imports.contains(last) {
        Some(kind)
    } else {
        None
    }
}

/// When the literal at `anchor` is the right-hand side of a
/// `const NAME: &[u8; 4] =` declaration, the constant's name.
fn const_name_before(joined: &str, anchor: usize) -> Option<String> {
    // kind constants are single-line declarations; a statement-boundary
    // scan would trip over the `;` inside `&[u8; 4]`
    let line_start = joined[..anchor].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let decl = &joined[line_start..anchor];
    if !decl.contains("[u8") || !decl.contains('=') {
        return None;
    }
    let c = find_word(decl, "const").into_iter().next()?;
    let name: String = decl[c + 5..]
        .trim_start()
        .chars()
        .take_while(|ch| ch.is_ascii_alphanumeric() || *ch == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// The body (between the outer braces) of `fn name` in cleaned code.
fn fn_body<'a>(joined: &'a str, name: &str) -> Option<&'a str> {
    for p in find_word(joined, name) {
        if !joined[..p].trim_end().ends_with("fn") {
            continue;
        }
        let open = joined[p..].find('{').map(|k| k + p)?;
        let close = skip_balanced(joined, open)?;
        return Some(&joined[open + 1..close - 1]);
    }
    None
}

/// The `{`..`}` span (byte offsets, exclusive of braces content bounds) of
/// `struct name` in cleaned code. Returns (open+1, close-1).
fn struct_body(joined: &str, name: &str) -> Option<(usize, usize)> {
    for p in find_word(joined, name) {
        if !joined[..p].trim_end().ends_with("struct") {
            continue;
        }
        let open = joined[p..].find('{').map(|k| k + p)?;
        // `;` before `{` means a unit/tuple struct or an unrelated brace
        if joined[p..open].contains(';') {
            continue;
        }
        let close = skip_balanced(joined, open)?;
        return Some((open + 1, close - 1));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_for(rel: &str, src: &str) -> WorkspaceModel {
        let mut m = WorkspaceModel::default();
        m.absorb(&Analysis::new(rel, src));
        m
    }

    #[test]
    fn env_classification_strict_raw_and_mention() {
        let src = "use sdea_obs::env::parse_or_exit;\n\
                   pub fn f() {\n\
                       let _ = parse_or_exit::<usize>(\"SDEA_ALPHA\", \"int\");\n\
                       let _ = std::env::var(\"SDEA_BETA\");\n\
                       let _ = \"SDEA_GAMMA\";\n\
                   }\n";
        let m = model_for("crates/core/src/x.rs", src);
        let by: std::collections::BTreeMap<_, _> =
            m.env_sites.iter().map(|s| (s.var.as_str(), s.access)).collect();
        assert_eq!(by["SDEA_ALPHA"], EnvAccess::Strict);
        assert_eq!(by["SDEA_BETA"], EnvAccess::Raw);
        assert_eq!(by["SDEA_GAMMA"], EnvAccess::Mention);
    }

    #[test]
    fn multiline_call_with_turbofish_resolves() {
        let src = "pub fn f() {\n\
                       let _ = sdea_obs::env::parse_or_exit::<u64>(\n\
                           \"SDEA_DELTA\",\n\
                           \"an integer\",\n\
                       );\n\
                   }\n";
        let m = model_for("crates/serve/src/x.rs", src);
        assert_eq!(m.env_sites.len(), 1);
        assert_eq!(m.env_sites[0].access, EnvAccess::Strict);
    }

    #[test]
    fn env_sentences_are_not_sites() {
        let src = "pub fn f() { die(\"SDEA_EPSILON is 0: expected positive\"); }\n";
        let m = model_for("crates/core/src/x.rs", src);
        assert!(m.env_sites.is_empty(), "{:?}", m.env_sites);
    }

    #[test]
    fn obs_calls_require_qualification_or_import() {
        let src = "use sdea_obs::{add, span};\n\
                   pub fn f() {\n\
                       let _s = span(\"eval.step\");\n\
                       add(\"eval.cells\", 1);\n\
                       sdea_obs::record(\"eval.loss\", 0.5);\n\
                       store.add(\"lm.tok_emb\", t);\n\
                       local_counter(\"index.probes\");\n\
                   }\n\
                   fn local_counter(name: &str) -> u64 { 0 }\n";
        let m = model_for("crates/eval/src/x.rs", src);
        let names: Vec<_> = m.obs_sites.iter().map(|s| (s.kind, s.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (ObsKind::Span, "eval.step"),
                (ObsKind::Counter, "eval.cells"),
                (ObsKind::Histogram, "eval.loss"),
            ]
        );
    }

    #[test]
    fn bare_counter_without_import_is_skipped() {
        let src = "fn counter(name: &str) -> u64 { 0 }\n\
                   pub fn f() { let _ = counter(\"index.probes\"); }\n";
        let m = model_for("crates/bench/src/bin/bench_index.rs", src);
        assert!(m.obs_sites.is_empty(), "{:?}", m.obs_sites);
    }

    #[test]
    fn blob_const_and_inline_sites() {
        let src = "pub const STORE_KIND: &[u8; 4] = b\"SDXQ\";\n\
                   pub fn f(h: &[u8]) -> bool { &h[..4] == b\"SDXQ\" }\n";
        let m = model_for("crates/tensor/src/x.rs", src);
        assert_eq!(m.blob_sites.len(), 2);
        assert_eq!(m.blob_sites[0].const_name.as_deref(), Some("STORE_KIND"));
        assert!(m.blob_sites[1].const_name.is_none());
    }

    #[test]
    fn test_code_accumulates_for_reference_grep() {
        let src = "pub const K: &[u8; 4] = b\"SDXR\";\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn corrupt() { assert_ne!(&[0u8; 4], super::K); }\n\
                   }\n";
        let m = model_for("crates/tensor/src/x.rs", src);
        assert!(!find_word(&m.test_code, "K").is_empty());
    }

    #[test]
    fn config_fields_and_exclusions() {
        let src = "pub struct SdeaConfig {\n\
                       pub dim: usize,\n\
                       /// worker budget\n\
                       // fingerprint: excluded(execution knob, never shapes results)\n\
                       pub threads: usize,\n\
                       pub index: IndexConfig,\n\
                   }\n";
        let m = model_for("crates/core/src/config.rs", src);
        let f: std::collections::BTreeMap<_, _> =
            m.config_fields.iter().map(|f| (f.name.as_str(), f.excluded)).collect();
        assert_eq!(f.len(), 3, "{:?}", m.config_fields);
        assert!(!f["dim"]);
        assert!(f["threads"]);
        assert!(!f["index"]);
    }

    #[test]
    fn fingerprint_body_extracted() {
        let src = "pub fn config_fingerprint(cfg: &SdeaConfig) -> u64 {\n\
                       let mut s = String::new();\n\
                       s.push_str(&cfg.dim.to_string());\n\
                       fnv(&s)\n\
                   }\n";
        let m = model_for("crates/core/src/checkpoint.rs", src);
        assert!(m.fingerprint_body.contains("cfg.dim"));
    }

    #[test]
    fn readme_tokens() {
        let toks = env_tokens("set SDEA_THREADS=8; the SDEA_ prefix; | `SDEA_OBS` |");
        assert!(toks.contains("SDEA_THREADS"));
        assert!(toks.contains("SDEA_OBS"));
        assert_eq!(toks.len(), 2, "{toks:?}");
    }
}
