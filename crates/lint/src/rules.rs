//! The named, individually-testable invariant rules.
//!
//! Every rule reports `file:line: rule-id: message` diagnostics against the
//! cleaned code channel of an [`Analysis`], so comments and string literals
//! can never fire a rule, and multi-line constructs (the
//! `partial_cmp(..)\n.unwrap()` the old grep gate provably missed) are
//! matched across line breaks. See `DESIGN.md` §11 for the rule table and
//! the justification-comment syntax.

use crate::analysis::{
    find_all, find_word, skip_balanced, Analysis, ATOMIC_WRITE_IMPLS, COMPUTE_CRATES,
    SPAWN_ALLOWED_FILE, UNSAFE_DENY_ROOTS, WALL_CLOCK_CRATES,
};
use std::collections::BTreeSet;

/// One rule violation. Lines are 1-based for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Static description of one rule, for `--list-rules`.
pub struct RuleInfo {
    pub id: &'static str,
    pub scope: &'static str,
    pub description: &'static str,
}

/// The rule table. IDs are stable: baselines, justifications and CI logs
/// refer to them.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D-HASH-ITER",
        scope: "compute crates, non-test",
        description: "no HashMap/HashSet iteration (iter/keys/values/into_iter/for-in): order is \
                      per-process random; use BTreeMap/sorted keys or justify with `// lint: sorted`",
    },
    RuleInfo {
        id: "D-THREAD-SPAWN",
        scope: "all crates, non-test",
        description: "no thread spawning outside sdea_tensor::par — the deterministic fork-join \
                      runtime owns the thread budget (SDEA_THREADS); sdea-serve I/O threads \
                      (accept loop, batch worker) are the one sanctioned exception, and each \
                      site must justify with `// lint: serve-spawn`",
    },
    RuleInfo {
        id: "D-WALL-CLOCK",
        scope: "all but obs/bench/serve, non-test",
        description: "no Instant/SystemTime outside observability and benchmarks: wall time must \
                      never feed a computation",
    },
    RuleInfo {
        id: "N-PARTIAL-CMP",
        scope: "all code incl. tests",
        description: "partial_cmp(..).unwrap()/.expect(..) panics on NaN, even across line \
                      breaks; use total_cmp or sdea_eval::desc_nan_last (DESIGN.md \u{a7}10)",
    },
    RuleInfo {
        id: "N-FLOAT-SORT",
        scope: "all crates, non-test",
        description: "sort_by/max_by/min_by closure uses partial_cmp without total_cmp or \
                      desc_nan_last: NaN silently misorders; justify with `// lint: nan-ordered`",
    },
    RuleInfo {
        id: "A-RAW-WRITE",
        scope: "all crates, non-test",
        description: "fs::write/File::create bypasses the atomic tmp+fsync+rename discipline; \
                      use sdea_tensor::serialize::atomic_write* or sdea_obs::fsio::atomic_write",
    },
    RuleInfo {
        id: "P-PANIC-BUDGET",
        scope: "per crate, non-test",
        description: "unwrap/expect/panic!/todo! counts are ratcheted in lint_baseline.toml: \
                      they may only decrease (refresh with --update-baseline)",
    },
    RuleInfo {
        id: "U-FORBID-UNSAFE",
        scope: "every crate root",
        description: "crate roots must carry #![forbid(unsafe_code)] so future unsafe needs an \
                      explicit, reviewed opt-out (the obs counting-allocator root alone may \
                      carry #![deny(unsafe_code)])",
    },
    RuleInfo {
        id: "R-ENV-STRICT",
        scope: "workspace, non-test",
        description: "SDEA_* environment reads must go through the sdea_obs::env strict helpers \
                      (a malformed value is a hard startup error, never a silent default); raw \
                      std::env access is allowed only inside the helper implementation",
    },
    RuleInfo {
        id: "R-ENV-REGISTRY",
        scope: "workspace + env_registry.toml + README.md",
        description: "every SDEA_* variable read in production code is committed in \
                      env_registry.toml (type, default, owning crate) and documented in \
                      README.md; unknown reads, dead entries, stale owners and stale docs all \
                      fail",
    },
    RuleInfo {
        id: "R-OBS-NAMES",
        scope: "workspace + obs_registry.toml",
        description: "every obs span/counter/histogram name is committed in obs_registry.toml \
                      with a dotted-prefix owner (serve.* records only in serve, rerank.* only \
                      in core::rerank); unregistered names, dead entries, cross-crate records \
                      and edit-distance-1 near-duplicates all fail",
    },
    RuleInfo {
        id: "R-BLOB-KIND",
        scope: "workspace + blob_registry.toml",
        description: "every 4-byte b\"SD..\" container tag is globally unique, registered in \
                      blob_registry.toml with a version and its defining file, and referenced \
                      by name from a corruption/round-trip test",
    },
    RuleInfo {
        id: "R-FPRINT-COVERAGE",
        scope: "SdeaConfig/IndexConfig/RerankConfig",
        description: "every public config field flows into the checkpoint fingerprint \
                      (config_fingerprint) or carries an explicit `// fingerprint: \
                      excluded(<reason>)` justification; stale exclusions on covered fields \
                      also fail",
    },
];

/// Runs every per-file rule (all but the cross-file panic-budget ratchet).
pub fn check_file(a: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if a.is_vendor {
        // Vendored shims only answer for the unsafe-forbid contract.
        forbid_unsafe(a, &mut out);
        return out;
    }
    hash_iteration(a, &mut out);
    thread_spawn(a, &mut out);
    wall_clock(a, &mut out);
    partial_cmp_unwrap(a, &mut out);
    raw_float_sort(a, &mut out);
    raw_write(a, &mut out);
    forbid_unsafe(a, &mut out);
    out.sort_by(|x, y| x.line.cmp(&y.line).then(x.rule.cmp(y.rule)));
    out
}

fn diag(a: &Analysis, byte: usize, rule: &'static str, msg: String) -> Diagnostic {
    Diagnostic { file: a.rel.clone(), line: a.line_of(byte) + 1, rule, msg }
}

// ---------------------------------------------------------------- D-HASH-ITER

/// Methods that observe a hash collection in iteration order.
const HASH_ITER_METHODS: &[&str] = &[
    ".iter(",
    ".iter_mut(",
    ".keys(",
    ".values(",
    ".values_mut(",
    ".into_iter(",
    ".drain(",
    ".retain(",
];

fn hash_iteration(a: &Analysis, out: &mut Vec<Diagnostic>) {
    if !COMPUTE_CRATES.contains(&a.crate_key.as_str()) {
        return;
    }
    let bound = hash_bound_names(&a.joined);
    if bound.is_empty() {
        return;
    }
    for m in HASH_ITER_METHODS {
        for p in find_all(&a.joined, m) {
            let recv = ident_before(&a.joined, p);
            if !bound.contains(recv) {
                continue;
            }
            let line = a.line_of(p);
            if a.is_prod_line(line) && !a.justified(line, "lint: sorted") {
                out.push(diag(
                    a,
                    p,
                    "D-HASH-ITER",
                    format!(
                        "iteration over hash-ordered collection `{recv}` ({}): order is \
                         per-process random; use BTreeMap/sorted keys or justify with \
                         `// lint: sorted`",
                        m.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
            }
        }
    }
    // `for pat in <bare hash binding> { .. }`
    for p in find_word(&a.joined, "for") {
        let Some(brace) = a.joined[p..].find('{').map(|k| k + p) else { continue };
        let Some(inpos) = a.joined[p..brace].find(" in ").map(|k| k + p) else { continue };
        let expr = a.joined[inpos + 4..brace].trim();
        let bare = expr.trim_start_matches('&').trim_start_matches("mut ").trim();
        if bare.is_empty()
            || !bare.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
        {
            continue; // method chains are handled by the receiver scan above
        }
        let seg = bare.rsplit('.').next().unwrap_or(bare);
        if !bound.contains(seg) {
            continue;
        }
        let line = a.line_of(inpos);
        if a.is_prod_line(line) && !a.justified(line, "lint: sorted") {
            out.push(diag(
                a,
                inpos,
                "D-HASH-ITER",
                format!(
                    "`for .. in {bare}` iterates a hash-ordered collection: order is per-process \
                     random; use BTreeMap/sorted keys or justify with `// lint: sorted`"
                ),
            ));
        }
    }
}

/// Collects identifiers bound to a `HashMap`/`HashSet` anywhere in the file:
/// `let` bindings whose statement mentions the type, and `name: ..Hash..`
/// field/parameter ascriptions. A name-level heuristic — shadowing a hash
/// binding's name with an ordered collection in the same file can false
/// positive, which the justification comment resolves.
fn hash_bound_names(joined: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ty in ["HashMap", "HashSet"] {
        for p in find_word(joined, ty) {
            let start = joined[..p].rfind([';', '{', '}']).map(|i| i + 1).unwrap_or(0);
            let stmt = joined[start..p].trim_start();
            if let Some(rest) = stmt.strip_prefix("let ") {
                let rest = rest.trim_start();
                let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                let name: String =
                    rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
                if !name.is_empty() {
                    names.insert(name);
                }
            } else if let Some(name) = ascribed_ident(joined, p) {
                names.insert(name);
            }
        }
    }
    names
}

/// Walks backwards from a type-token offset over type-ish characters to a
/// single `:` (skipping `::` pairs) and returns the ascribed identifier, as
/// in `buckets: RefCell<HashMap<..>>` or `fn f(m: &HashMap<..>)`.
fn ascribed_ident(joined: &str, p: usize) -> Option<String> {
    let b = joined.as_bytes();
    let type_char = |c: u8| {
        c.is_ascii_alphanumeric()
            || matches!(
                c,
                b'_' | b'<' | b'>' | b',' | b'&' | b'\'' | b'(' | b')' | b' ' | b'\t' | b'\n'
            )
    };
    let mut i = p;
    while i > 0 {
        let c = b[i - 1];
        if c == b':' {
            if i >= 2 && b[i - 2] == b':' {
                i -= 2; // path separator `::`, keep walking
                continue;
            }
            // found the ascription colon: the identifier sits before it
            let mut e = i - 1;
            while e > 0 && b[e - 1].is_ascii_whitespace() {
                e -= 1;
            }
            let mut s = e;
            while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
                s -= 1;
            }
            return (s < e).then(|| joined[s..e].to_string());
        }
        if !type_char(c) {
            return None;
        }
        i -= 1;
    }
    None
}

/// The identifier immediately before byte `p` (e.g. the receiver of a
/// method call whose `.` sits at `p`).
fn ident_before(joined: &str, p: usize) -> &str {
    let b = joined.as_bytes();
    let mut s = p;
    while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
        s -= 1;
    }
    &joined[s..p]
}

// ------------------------------------------------------------- D-THREAD-SPAWN

fn thread_spawn(a: &Analysis, out: &mut Vec<Diagnostic>) {
    if a.rel == SPAWN_ALLOWED_FILE {
        return;
    }
    for p in find_word(&a.joined, "spawn") {
        let after = a.joined[p + 5..].trim_start();
        if !after.starts_with('(') {
            continue;
        }
        let line = a.line_of(p);
        if !a.is_prod_line(line) {
            continue;
        }
        // The serving layer is the one sanctioned concurrency consumer
        // outside the fork-join runtime: connection threads and the batch
        // worker are I/O-driven and never feed a deterministic
        // computation. Each spawn site still carries an explicit marker
        // so new ones are a reviewed decision, not an accident.
        if a.crate_key == "serve" && a.justified(line, "lint: serve-spawn") {
            continue;
        }
        out.push(diag(
            a,
            p,
            "D-THREAD-SPAWN",
            "thread creation outside sdea_tensor::par breaks the deterministic fork-join \
             budget (SDEA_THREADS); use par::map_chunks/join (or, in sdea-serve only, \
             justify with `// lint: serve-spawn`)"
                .to_string(),
        ));
    }
}

// --------------------------------------------------------------- D-WALL-CLOCK

fn wall_clock(a: &Analysis, out: &mut Vec<Diagnostic>) {
    if WALL_CLOCK_CRATES.contains(&a.crate_key.as_str()) {
        return;
    }
    for tok in ["Instant", "SystemTime"] {
        for p in find_word(&a.joined, tok) {
            let line = a.line_of(p);
            if a.is_prod_line(line) {
                out.push(diag(
                    a,
                    p,
                    "D-WALL-CLOCK",
                    format!(
                        "`{tok}` outside obs/bench: wall time must never feed a computation; \
                         record timings through sdea_obs spans instead"
                    ),
                ));
            }
        }
    }
}

// -------------------------------------------------------------- N-PARTIAL-CMP

fn partial_cmp_unwrap(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for p in find_word(&a.joined, "partial_cmp") {
        let mut i = p + "partial_cmp".len();
        let b = a.joined.as_bytes();
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if b.get(i) != Some(&b'(') {
            continue;
        }
        let Some(close) = skip_balanced(&a.joined, i) else { continue };
        let tail = a.joined[close..].trim_start();
        if tail.starts_with(".unwrap()") || tail.starts_with(".expect(") {
            out.push(diag(
                a,
                p,
                "N-PARTIAL-CMP",
                "partial_cmp(..) followed by .unwrap()/.expect(..) panics on NaN; use \
                 total_cmp or sdea_eval::desc_nan_last (DESIGN.md \u{a7}10)"
                    .to_string(),
            ));
        }
    }
}

// -------------------------------------------------------------- N-FLOAT-SORT

const FLOAT_SORT_METHODS: &[&str] = &[".sort_by(", ".sort_unstable_by(", ".max_by(", ".min_by("];

fn raw_float_sort(a: &Analysis, out: &mut Vec<Diagnostic>) {
    for m in FLOAT_SORT_METHODS {
        for p in find_all(&a.joined, m) {
            let open = p + m.len() - 1;
            let Some(close) = skip_balanced(&a.joined, open) else { continue };
            let body = &a.joined[open..close];
            if !body.contains("partial_cmp")
                || body.contains("total_cmp")
                || body.contains("desc_nan_last")
            {
                continue;
            }
            let line = a.line_of(p);
            if a.is_prod_line(line) && !a.justified(line, "lint: nan-ordered") {
                out.push(diag(
                    a,
                    p,
                    "N-FLOAT-SORT",
                    format!(
                        "`{}` comparator uses partial_cmp without total_cmp/desc_nan_last: NaN \
                         silently misorders; justify with `// lint: nan-ordered` if NaN-free by \
                         construction",
                        m.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}

// --------------------------------------------------------------- A-RAW-WRITE

const RAW_WRITE_TOKENS: &[&str] = &["fs::write(", "File::create(", "OpenOptions"];

fn raw_write(a: &Analysis, out: &mut Vec<Diagnostic>) {
    if ATOMIC_WRITE_IMPLS.contains(&a.rel.as_str()) {
        return;
    }
    for tok in RAW_WRITE_TOKENS {
        for p in find_all(&a.joined, tok) {
            let line = a.line_of(p);
            if a.is_prod_line(line) {
                out.push(diag(
                    a,
                    p,
                    "A-RAW-WRITE",
                    format!(
                        "`{}` bypasses the atomic tmp+fsync+rename discipline — a crash here can \
                         leave a truncated file; use sdea_tensor::serialize::atomic_write* or \
                         sdea_obs::fsio::atomic_write",
                        tok.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}

// ------------------------------------------------------------ U-FORBID-UNSAFE

fn forbid_unsafe(a: &Analysis, out: &mut Vec<Diagnostic>) {
    if !a.is_crate_root || a.joined.contains("#![forbid(unsafe_code)]") {
        return;
    }
    // The counting-allocator host may weaken to `deny` (still a hard
    // compile error outside its one sanctioned `allow` scope).
    if UNSAFE_DENY_ROOTS.contains(&a.rel.as_str()) && a.joined.contains("#![deny(unsafe_code)]") {
        return;
    }
    out.push(Diagnostic {
        file: a.rel.clone(),
        line: 1,
        rule: "U-FORBID-UNSAFE",
        msg: "crate root is missing #![forbid(unsafe_code)]; the workspace is unsafe-free \
              and future unsafe requires an explicit, reviewed opt-out"
            .to_string(),
    });
}

// ------------------------------------------------------------ P-PANIC-BUDGET

/// Counts panic-capable call sites (`unwrap()`, `expect(`, `panic!`,
/// `todo!`) on production lines of one file. Fed into the per-crate
/// ratchet against `lint_baseline.toml`.
pub fn panic_count(a: &Analysis) -> usize {
    if a.is_vendor || a.is_test_path || a.is_example {
        return 0;
    }
    let mut n = 0;
    for tok in ["unwrap", "expect"] {
        for p in find_word(&a.joined, tok) {
            let after = a.joined[p + tok.len()..].trim_start();
            if after.starts_with('(') && a.is_prod_line(a.line_of(p)) {
                n += 1;
            }
        }
    }
    for tok in ["panic", "todo"] {
        for p in find_word(&a.joined, tok) {
            if a.joined[p + tok.len()..].starts_with('!') && a.is_prod_line(a.line_of(p)) {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(rel: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&Analysis::new(rel, src))
    }

    #[test]
    fn hash_binding_extraction_covers_let_field_and_param() {
        let src = "struct S { index_of: std::collections::HashMap<u32, usize> }\n\
                   fn f(m: &HashMap<String, u64>) {\n\
                   let mut by_head: std::collections::HashMap<usize, Vec<usize>> =\n\
                       std::collections::HashMap::new();\n\
                   let seen = std::collections::HashSet::with_capacity(4);\n\
                   }\n";
        let names = hash_bound_names(&crate::lexer::clean(src).joined());
        for n in ["index_of", "m", "by_head", "seen"] {
            assert!(names.contains(n), "missing {n} in {names:?}");
        }
    }

    #[test]
    fn use_statement_binds_nothing() {
        let names = hash_bound_names("use std::collections::HashMap;\n");
        assert!(names.is_empty(), "{names:?}");
    }

    #[test]
    fn lookup_only_hash_use_is_clean() {
        let src = "use std::collections::HashMap;\n\
                   pub fn get(m: &HashMap<String, u64>, k: &str) -> Option<u64> {\n\
                       m.get(k).copied()\n\
                   }\n";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_fires_only_in_compute_crates() {
        let src = "use std::collections::HashMap;\n\
                   pub fn ks(m: &HashMap<String, u64>) -> Vec<String> {\n\
                       m.keys().cloned().collect()\n\
                   }\n";
        assert!(diags("crates/core/src/x.rs", src).iter().any(|d| d.rule == "D-HASH-ITER"));
        assert!(
            diags("crates/serve/src/x.rs", src).iter().any(|d| d.rule == "D-HASH-ITER"),
            "the serving data path is a compute crate"
        );
        assert!(diags("crates/kg/src/x.rs", src).is_empty(), "kg is not a compute crate");
    }

    /// The reranker lives in a compute crate, so every determinism rule
    /// covers it: hash iteration, wall clocks, and (via `lint_baseline.toml`,
    /// core = 2, both already spent elsewhere) the panic budget.
    #[test]
    fn rerank_module_is_enrolled_in_the_determinism_rules() {
        let hash = "use std::collections::HashMap;\n\
                    pub fn ks(m: &HashMap<String, u64>) -> Vec<String> {\n\
                        m.keys().cloned().collect()\n\
                    }\n";
        assert!(
            diags("crates/core/src/rerank.rs", hash).iter().any(|d| d.rule == "D-HASH-ITER"),
            "hash iteration in the reranker must fire"
        );
        let clock = "pub fn t() { let _ = std::time::Instant::now(); }\n";
        assert!(
            diags("crates/core/src/rerank.rs", clock).iter().any(|d| d.rule == "D-WALL-CLOCK"),
            "wall clocks in the reranker must fire"
        );
        let panics = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            panic_count(&Analysis::new("crates/core/src/rerank.rs", panics)),
            1,
            "reranker unwraps must count against core's panic budget"
        );
    }

    #[test]
    fn unsafe_deny_is_accepted_only_for_the_allocator_root() {
        let deny = "#![deny(unsafe_code)]\npub mod mem;\n";
        assert!(
            diags("crates/obs/src/lib.rs", deny).iter().all(|d| d.rule != "U-FORBID-UNSAFE"),
            "the obs root may weaken to deny for the counting allocator"
        );
        assert!(
            diags("crates/core/src/lib.rs", deny).iter().any(|d| d.rule == "U-FORBID-UNSAFE"),
            "deny is not accepted for any other crate root"
        );
        assert!(
            diags("crates/obs/src/lib.rs", "pub mod mem;\n")
                .iter()
                .any(|d| d.rule == "U-FORBID-UNSAFE"),
            "the obs root still needs at least deny"
        );
    }

    #[test]
    fn spawn_flagged_outside_par() {
        let src = "pub fn go() { std::thread::spawn(|| {}); }\n";
        assert!(diags("crates/core/src/x.rs", src).iter().any(|d| d.rule == "D-THREAD-SPAWN"));
        assert!(diags("crates/tensor/src/par.rs", src).is_empty());
    }

    #[test]
    fn serve_spawn_needs_the_justification_marker() {
        let unjustified = "pub fn go() { std::thread::spawn(|| {}); }\n";
        assert!(
            diags("crates/serve/src/server.rs", unjustified)
                .iter()
                .any(|d| d.rule == "D-THREAD-SPAWN"),
            "a bare spawn in serve still fires"
        );
        let justified = "pub fn go() {\n\
                         // lint: serve-spawn — connection thread\n\
                         std::thread::spawn(|| {});\n\
                         }\n";
        assert!(diags("crates/serve/src/server.rs", justified).is_empty());
        // The marker does not travel: other crates stay locked down.
        assert!(
            diags("crates/core/src/x.rs", justified).iter().any(|d| d.rule == "D-THREAD-SPAWN"),
            "the serve carve-out must not apply to core"
        );
    }

    #[test]
    fn wall_clock_allowed_in_obs_bench_and_serve() {
        let src = "pub fn t() { let _ = std::time::Instant::now(); }\n";
        assert!(diags("crates/synth/src/x.rs", src).iter().any(|d| d.rule == "D-WALL-CLOCK"));
        assert!(diags("crates/obs/src/x.rs", src).is_empty());
        assert!(diags("crates/bench/src/x.rs", src).is_empty());
        assert!(diags("crates/serve/src/batcher.rs", src).is_empty());
    }

    #[test]
    fn partial_cmp_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(a: f32, b: f32) { a.partial_cmp(&b).unwrap(); }\n}\n";
        assert!(diags("crates/core/src/x.rs", src).iter().any(|d| d.rule == "N-PARTIAL-CMP"));
    }

    #[test]
    fn panic_count_skips_test_regions() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   pub fn g() { panic!(\"boom\") }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { None::<u32>.unwrap(); todo!() }\n\
                   }\n";
        assert_eq!(panic_count(&Analysis::new("crates/core/src/x.rs", src)), 2);
    }

    #[test]
    fn unwrap_or_is_not_counted() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert_eq!(panic_count(&Analysis::new("crates/core/src/x.rs", src)), 0);
    }
}
