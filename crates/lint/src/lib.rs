//! # sdea-lint
//!
//! A workspace invariant checker for the SDEA codebase. The system's
//! reproduction guarantees — bit-identical results at any thread budget,
//! NaN-safe ranking, crash-atomic persistence — used to be enforced by a
//! single-line grep in `ci.sh` and reviewer vigilance. This crate compiles
//! them into named, individually-testable static-analysis rules over the
//! whole workspace's Rust sources:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D-HASH-ITER` | no hash-ordered iteration in compute crates |
//! | `D-THREAD-SPAWN` | all threads come from `sdea_tensor::par` |
//! | `D-WALL-CLOCK` | wall time only in `obs`/`bench` |
//! | `N-PARTIAL-CMP` | no `partial_cmp(..).unwrap()/.expect(..)`, multi-line included |
//! | `N-FLOAT-SORT` | float comparators use `total_cmp`/`desc_nan_last` |
//! | `A-RAW-WRITE` | file writes go through the atomic tmp+rename layer |
//! | `P-PANIC-BUDGET` | per-crate panic counts ratchet down via `lint_baseline.toml` |
//! | `U-FORBID-UNSAFE` | every crate root carries `#![forbid(unsafe_code)]` (the obs counting-allocator root alone may carry `deny`) |
//! | `R-ENV-STRICT` | every `SDEA_*` env read goes through `sdea_obs::env` strict helpers |
//! | `R-ENV-REGISTRY` | `SDEA_*` variables are committed in `env_registry.toml` and documented in README |
//! | `R-OBS-NAMES` | obs span/counter/histogram names are registered with dotted-prefix owners, no near-duplicates |
//! | `R-BLOB-KIND` | `b"SD.."` container tags are unique, versioned in `blob_registry.toml`, and pinned by a test |
//! | `R-FPRINT-COVERAGE` | every public config field flows into the checkpoint fingerprint or is explicitly excluded |
//!
//! The analysis is textual but literal-aware: a hand-rolled lexer
//! ([`lexer`]) strips comments and blanks string/char literals first (the
//! repo builds offline, so no external parser dependencies), then rules
//! ([`rules`]) match on the cleaned code channel with balanced-delimiter
//! scanning, scoped per crate and outside `#[cfg(test)]` regions
//! ([`analysis`]). The panic-budget ratchet lives in [`baseline`], and
//! [`workspace`] drives a full run. See `DESIGN.md` §11.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod baseline;
pub mod contracts;
pub mod lexer;
pub mod model;
pub mod registry;
pub mod rules;
pub mod workspace;

pub use analysis::Analysis;
pub use rules::{check_file, panic_count, Diagnostic, RULES};
