//! Per-file analysis context: the cleaned source plus everything the rules
//! need to scope themselves — crate attribution, test-code detection
//! (`tests/` paths and `#[cfg(test)]` regions), line mapping and
//! justification-comment lookup.

use crate::lexer::{clean, CleanFile};

/// Rust crates whose non-test code must be bit-deterministic (rule
/// `D-HASH-ITER`): everything between input tensors and output metrics,
/// including the serving data path (batched queries must score
/// bit-identically to offline ranking).
pub const COMPUTE_CRATES: &[&str] =
    &["tensor", "core", "eval", "baselines", "lm", "index", "serve"];

/// Crates allowed to read wall clocks (rule `D-WALL-CLOCK`): observability,
/// the benchmark harness, and the server (batching windows and request
/// deadlines are wall-clock by nature and never feed a computation).
pub const WALL_CLOCK_CRATES: &[&str] = &["obs", "bench", "serve"];

/// The one file allowed to create threads (rule `D-THREAD-SPAWN`).
pub const SPAWN_ALLOWED_FILE: &str = "crates/tensor/src/par.rs";

/// Files implementing the atomic-write discipline itself (rule
/// `A-RAW-WRITE` allowlist) — everything else must call through them.
pub const ATOMIC_WRITE_IMPLS: &[&str] =
    &["crates/tensor/src/serialize.rs", "crates/obs/src/fsio.rs"];

/// Crate roots allowed to carry `#![deny(unsafe_code)]` instead of
/// `forbid` (rule `U-FORBID-UNSAFE`): the obs crate hosts the counting
/// global allocator, whose `GlobalAlloc` impl is necessarily `unsafe`,
/// and `forbid` cannot be locally overridden. The opt-out itself is
/// scoped to `crates/obs/src/mem.rs` and justified there.
pub const UNSAFE_DENY_ROOTS: &[&str] = &["crates/obs/src/lib.rs"];

/// One analyzed source file.
#[derive(Debug)]
pub struct Analysis {
    /// Workspace-relative path with `/` separators (diagnostic prefix).
    pub rel: String,
    /// Crate attribution: `"tensor"`, `"core"`, …, `"root"` for `src/`,
    /// `"tests"` / `"examples"` for the top-level dirs, `"vendor/<name>"`.
    pub crate_key: String,
    /// Under `vendor/` — only the `U-FORBID-UNSAFE` rule applies.
    pub is_vendor: bool,
    /// Under a `tests/` or `benches/` directory (integration tests).
    pub is_test_path: bool,
    /// Under `examples/` — demo code, exempt from production rules.
    pub is_example: bool,
    /// A crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) that
    /// must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Per-line code/comment channels.
    pub clean: CleanFile,
    /// The code channel, `\n`-joined (rules scan this).
    pub joined: String,
    /// Byte offset of each line start in `joined`.
    pub line_starts: Vec<usize>,
    /// `true` for lines inside `#[cfg(test)]` / `#[test]` regions.
    pub test_mask: Vec<bool>,
}

impl Analysis {
    /// Analyzes `src` as if it lived at workspace-relative path `rel`.
    pub fn new(rel: &str, src: &str) -> Self {
        let rel = rel.replace('\\', "/");
        let clean = clean(src);
        let joined = clean.joined();
        let mut line_starts = vec![0usize];
        for (i, b) in joined.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_mask = test_mask(&joined, &line_starts, clean.code_lines.len());
        let crate_key = crate_key(&rel);
        let parts: Vec<&str> = rel.split('/').collect();
        let is_vendor = parts.first() == Some(&"vendor");
        let is_test_path = parts.iter().any(|p| *p == "tests" || *p == "benches");
        let is_example = parts.contains(&"examples");
        let is_crate_root = rel.ends_with("src/lib.rs")
            || rel.ends_with("src/main.rs")
            || rel == "src/lib.rs"
            || rel == "src/main.rs"
            || parts.windows(2).any(|w| w == ["src", "bin"]);
        Analysis {
            rel,
            crate_key,
            is_vendor,
            is_test_path,
            is_example,
            is_crate_root,
            clean,
            joined,
            line_starts,
            test_mask,
        }
    }

    /// 0-based line of a byte offset into [`Self::joined`].
    pub fn line_of(&self, byte: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= byte).saturating_sub(1)
    }

    /// True when `line` (0-based) is production code: not in a vendored
    /// crate, test/example path, or `#[cfg(test)]` region.
    pub fn is_prod_line(&self, line: usize) -> bool {
        !self.is_vendor
            && !self.is_test_path
            && !self.is_example
            && !self.test_mask.get(line).copied().unwrap_or(false)
    }

    /// The literal whose opening-quote anchor sits at byte `offset` of
    /// [`Self::joined`] (i.e. the `"` a rule matched in the blanked code).
    pub fn literal_at(&self, offset: usize) -> Option<&crate::lexer::Literal> {
        self.clean
            .literals
            .iter()
            .find(|l| self.line_starts.get(l.line).map(|s| s + l.col) == Some(offset))
    }

    /// Every literal paired with its anchor byte offset into
    /// [`Self::joined`] (workspace extraction iterates these).
    pub fn literals_with_offsets(&self) -> Vec<(usize, &crate::lexer::Literal)> {
        self.clean
            .literals
            .iter()
            .filter_map(|l| self.line_starts.get(l.line).map(|s| (s + l.col, l)))
            .collect()
    }

    /// True when `line` (0-based) carries the justification `marker` in a
    /// trailing comment, or the line directly above is a comment-only line
    /// carrying it.
    pub fn justified(&self, line: usize, marker: &str) -> bool {
        let has =
            |l: usize| self.clean.comment_lines.get(l).map(|c| c.contains(marker)).unwrap_or(false);
        if has(line) {
            return true;
        }
        line > 0 && has(line - 1) && self.clean.code_lines[line - 1].trim().is_empty()
    }
}

/// Derives the crate key from a workspace-relative path.
fn crate_key(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        ["vendor", name, ..] => format!("vendor/{name}"),
        ["src", ..] => "root".to_string(),
        ["tests", ..] => "tests".to_string(),
        ["examples", ..] => "examples".to_string(),
        _ => "other".to_string(),
    }
}

/// Marks every line covered by a `#[cfg(test)]` or `#[test]` item: the
/// attribute, any further attributes, and the item body through its
/// matching closing brace (or terminating `;`).
fn test_mask(joined: &str, line_starts: &[usize], n_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; n_lines];
    let line_of = |byte: usize| line_starts.partition_point(|&s| s <= byte).saturating_sub(1);
    let b = joined.as_bytes();
    for pat in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(p) = joined[from..].find(pat).map(|k| k + from) {
            from = p + pat.len();
            let mut i = p + pat.len();
            // skip whitespace and any further attributes
            loop {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'#' {
                    match joined[i..]
                        .find('[')
                        .map(|k| k + i)
                        .and_then(|br| skip_balanced(joined, br))
                    {
                        Some(e) => {
                            i = e;
                            continue;
                        }
                        None => break,
                    }
                }
                break;
            }
            // scan to the item body `{` (then match braces) or a `;`
            let mut depth = 0i32;
            let mut end = None;
            let mut j = i;
            while j < b.len() {
                match b[j] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => {
                        end = skip_balanced(joined, j).map(|e| e - 1);
                        break;
                    }
                    b';' if depth == 0 => {
                        end = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(e) = end {
                for line in mask.iter_mut().take(line_of(e) + 1).skip(line_of(p)) {
                    *line = true;
                }
            }
        }
    }
    mask
}

/// With `s[open]` an opening `(`/`[`/`{`, returns the index one past the
/// matching close. Assumes literal contents were blanked by the lexer.
pub fn skip_balanced(s: &str, open: usize) -> Option<usize> {
    let b = s.as_bytes();
    let (o, c) = match b.get(open)? {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        b'{' => (b'{', b'}'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (i, &x) in b.iter().enumerate().skip(open) {
        if x == o {
            depth += 1;
        } else if x == c {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
    }
    None
}

/// Byte offsets of `needle` in `hay` at identifier boundaries.
pub fn find_word(hay: &str, needle: &str) -> Vec<usize> {
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let h = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle).map(|k| k + from) {
        let before_ok = p == 0 || !is_ident(h[p - 1]);
        let after = p + needle.len();
        let after_ok = after >= h.len() || !is_ident(h[after]);
        if before_ok && after_ok {
            out.push(p);
        }
        from = p + 1;
    }
    out
}

/// Byte offsets of all (plain substring) occurrences of `needle`.
pub fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle).map(|k| k + from) {
        out.push(p);
        from = p + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys() {
        assert_eq!(Analysis::new("crates/tensor/src/par.rs", "").crate_key, "tensor");
        assert_eq!(Analysis::new("src/lib.rs", "").crate_key, "root");
        assert_eq!(Analysis::new("vendor/proptest/src/lib.rs", "").crate_key, "vendor/proptest");
        assert_eq!(Analysis::new("tests/properties.rs", "").crate_key, "tests");
    }

    #[test]
    fn crate_roots_detected() {
        assert!(Analysis::new("crates/kg/src/lib.rs", "").is_crate_root);
        assert!(Analysis::new("src/bin/sdea.rs", "").is_crate_root);
        assert!(Analysis::new("crates/bench/src/bin/calibrate.rs", "").is_crate_root);
        assert!(!Analysis::new("crates/kg/src/io.rs", "").is_crate_root);
    }

    #[test]
    fn cfg_test_region_masks_module_body() {
        let src =
            "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\npub fn after() {}\n";
        let a = Analysis::new("crates/core/src/x.rs", src);
        assert!(a.is_prod_line(0));
        assert!(!a.is_prod_line(1), "attribute line is test");
        assert!(!a.is_prod_line(3), "module body is test");
        assert!(a.is_prod_line(5), "code after the module is production");
    }

    #[test]
    fn test_attribute_with_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() {\n    panic!()\n}\nfn fine() {}\n";
        let a = Analysis::new("crates/core/src/x.rs", src);
        assert!(!a.is_prod_line(3), "fn body under #[test] is test code");
        assert!(a.is_prod_line(5));
    }

    #[test]
    fn test_paths_are_never_production() {
        let a = Analysis::new("crates/eval/tests/par_equivalence.rs", "fn x() {}");
        assert!(!a.is_prod_line(0));
        assert!(a.is_test_path);
    }

    #[test]
    fn justification_same_line_and_line_above() {
        let src =
            "let a = m.keys(); // lint: sorted\n// lint: sorted\nlet b = m.keys();\nlet c = 1;\n";
        let a = Analysis::new("crates/core/src/x.rs", src);
        assert!(a.justified(0, "lint: sorted"));
        assert!(a.justified(2, "lint: sorted"));
        assert!(!a.justified(3, "lint: sorted"));
    }

    #[test]
    fn line_of_maps_offsets() {
        let a = Analysis::new("src/x.rs", "a\nbb\nccc\n");
        assert_eq!(a.line_of(0), 0);
        assert_eq!(a.line_of(2), 1);
        assert_eq!(a.line_of(5), 2);
    }
}
