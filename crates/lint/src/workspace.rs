//! Workspace discovery and the top-level lint run: walk the repo's Rust
//! sources (deterministically — the linter practices what it preaches),
//! analyze each file, apply every rule, and ratchet the panic budget
//! against `lint_baseline.toml`.

use crate::analysis::Analysis;
use crate::baseline::{self, Baseline};
use crate::contracts::{self, Registries};
use crate::model::WorkspaceModel;
use crate::registry;
use crate::rules::{self, Diagnostic};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Top-level directories scanned for `.rs` sources.
const SCAN_DIRS: &[&str] = &["crates", "src", "tests", "examples", "vendor"];

/// Directory names skipped wherever they appear: build output and the
/// lint's own rule fixtures (which contain deliberate violations).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// The result of one full lint run.
#[derive(Debug, Default)]
pub struct RunResult {
    /// All rule violations, sorted by (file, line, rule). Non-empty ⇒ fail.
    pub diags: Vec<Diagnostic>,
    /// Non-fatal notes (ratchet-improvement hints, baseline updates).
    pub notes: Vec<String>,
    /// Live per-crate panic counts.
    pub panic_counts: BTreeMap<String, usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Whether `--update-baseline` rewrote the baseline file.
    pub baseline_updated: bool,
}

/// Registry-path overrides for [`run_with`] (each defaults to the
/// same-named file at the workspace root). CI's corrupted-registry smoke
/// points one of these at a doctored copy.
#[derive(Debug, Default)]
pub struct Options {
    pub env_registry: Option<PathBuf>,
    pub obs_registry: Option<PathBuf>,
    pub blob_registry: Option<PathBuf>,
}

/// Runs every rule over the workspace at `root` and ratchets against the
/// baseline at `baseline_path`. With `update`, rewrites the baseline when
/// counts decreased or new crates appeared (never to launder an increase).
pub fn run(root: &Path, baseline_path: &Path, update: bool) -> io::Result<RunResult> {
    run_with(root, baseline_path, update, &Options::default())
}

/// [`run`] with explicit registry locations.
pub fn run_with(
    root: &Path,
    baseline_path: &Path,
    update: bool,
    opts: &Options,
) -> io::Result<RunResult> {
    let mut res = RunResult::default();
    let mut model = WorkspaceModel::default();
    for path in source_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let a = Analysis::new(&rel, &src);
        res.files_scanned += 1;
        res.diags.extend(rules::check_file(&a));
        model.absorb(&a);
        if !a.is_vendor && !a.is_test_path && !a.is_example {
            *res.panic_counts.entry(a.crate_key.clone()).or_insert(0) += rules::panic_count(&a);
        }
    }
    match std::fs::read_to_string(root.join("README.md")) {
        Ok(text) => model.set_readme(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let regs = load_registries(root, opts)?;
    res.diags.extend(contracts::check(&model, &regs));
    ratchet(&mut res, baseline_path, update)?;
    res.diags
        .sort_by(|x, y| x.file.cmp(&y.file).then(x.line.cmp(&y.line)).then(x.rule.cmp(y.rule)));
    Ok(res)
}

/// Loads the three contract registries. A missing file parses as an empty
/// registry (every live contract name then fires as unregistered — nothing
/// is waved through); a malformed file is a hard error.
fn load_registries(root: &Path, opts: &Options) -> io::Result<Registries> {
    let path = |over: &Option<PathBuf>, name: &str| over.clone().unwrap_or_else(|| root.join(name));
    let read = |p: &Path| match std::fs::read_to_string(p) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    };
    let env_path = path(&opts.env_registry, "env_registry.toml");
    let obs_path = path(&opts.obs_registry, "obs_registry.toml");
    let blob_path = path(&opts.blob_registry, "blob_registry.toml");
    Ok(Registries {
        env: read(&env_path)?
            .map(|t| registry::parse_env(&t))
            .transpose()
            .map_err(io::Error::other)?
            .unwrap_or_default(),
        env_path: env_path.display().to_string(),
        obs: read(&obs_path)?
            .map(|t| registry::parse_obs(&t))
            .transpose()
            .map_err(io::Error::other)?
            .unwrap_or_default(),
        obs_path: obs_path.display().to_string(),
        blob: read(&blob_path)?
            .map(|t| registry::parse_blob(&t))
            .transpose()
            .map_err(io::Error::other)?
            .unwrap_or_default(),
        blob_path: blob_path.display().to_string(),
    })
}

fn ratchet(res: &mut RunResult, baseline_path: &Path, update: bool) -> io::Result<()> {
    let existing = match std::fs::read_to_string(baseline_path) {
        Ok(text) => Some(baseline::parse(&text).map_err(io::Error::other)?),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    let Some(base) = existing else {
        if update {
            let new = Baseline { panic_budget: res.panic_counts.clone() };
            write_baseline(baseline_path, &new)?;
            res.baseline_updated = true;
            res.notes.push(format!("created {} from live counts", baseline_path.display()));
        } else {
            res.diags.push(Diagnostic {
                file: baseline_path.display().to_string(),
                line: 1,
                rule: "P-PANIC-BUDGET",
                msg: "baseline file missing; bootstrap it with \
                      `cargo run --release -p sdea-lint -- --update-baseline`"
                    .to_string(),
            });
        }
        return Ok(());
    };
    let report = baseline::check(&res.panic_counts, &base);
    for (cr, live, allowed) in &report.exceeded {
        res.diags.push(Diagnostic {
            file: baseline_path.display().to_string(),
            line: 1,
            rule: "P-PANIC-BUDGET",
            msg: format!(
                "crate `{cr}` has {live} panic-capable call sites, baseline allows {allowed}: \
                 the budget only ratchets down — remove unwrap/expect/panic!/todo! or raise the \
                 committed baseline in a reviewed diff"
            ),
        });
    }
    for (cr, live) in &report.missing {
        res.diags.push(Diagnostic {
            file: baseline_path.display().to_string(),
            line: 1,
            rule: "P-PANIC-BUDGET",
            msg: format!(
                "crate `{cr}` is not enrolled in the panic-budget baseline (live count {live}): \
                 enroll it with `cargo run --release -p sdea-lint -- --update-baseline` and \
                 commit the result"
            ),
        });
    }
    for (cr, live, allowed) in &report.improved {
        res.notes.push(format!(
            "panic budget for `{cr}` can ratchet {allowed} -> {live}; run --update-baseline"
        ));
    }
    if update {
        if !report.exceeded.is_empty() {
            // refuse to launder an increase into the committed file
            return Ok(());
        }
        let new = Baseline { panic_budget: res.panic_counts.clone() };
        if new != base {
            write_baseline(baseline_path, &new)?;
            res.baseline_updated = true;
            res.notes.push(format!("ratcheted {} down", baseline_path.display()));
        }
    }
    Ok(())
}

fn write_baseline(path: &Path, b: &Baseline) -> io::Result<()> {
    sdea_obs::fsio::atomic_write(path, baseline::render(b).as_bytes())
}

/// Renders a run as the machine-readable CI artifact
/// (`results/lint_report.json`).
pub fn json_report(res: &RunResult) -> String {
    use sdea_obs::json::Json;
    let diags = res
        .diags
        .iter()
        .map(|d| {
            Json::obj(vec![
                ("file", Json::str(&d.file)),
                ("line", Json::Num(d.line as f64)),
                ("rule", Json::str(d.rule)),
                ("msg", Json::str(&d.msg)),
            ])
        })
        .collect();
    let counts = res.panic_counts.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect();
    let mut report = Json::obj(vec![
        ("tool", Json::str("sdea-lint")),
        ("clean", Json::Bool(res.diags.is_empty())),
        ("files_scanned", Json::Num(res.files_scanned as f64)),
        ("rules", Json::Num(crate::rules::RULES.len() as f64)),
        ("violations", Json::Arr(diags)),
        ("panic_counts", Json::Obj(counts)),
    ]);
    if !res.notes.is_empty() {
        if let Json::Obj(fields) = &mut report {
            fields
                .push(("notes".to_string(), Json::Arr(res.notes.iter().map(Json::str).collect())));
        }
    }
    let mut text = report.encode();
    text.push('\n');
    text
}

/// Atomically writes the JSON report, creating the parent directory.
pub fn write_json_report(path: &Path, res: &RunResult) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    sdea_obs::fsio::atomic_write(path, json_report(res).as_bytes())
}

/// All `.rs` files under the scan roots, in sorted (deterministic) order.
pub fn source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        let d = root.join(dir);
        if d.is_dir() {
            walk(&d, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
