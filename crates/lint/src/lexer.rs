//! A hand-rolled, comment- and string-literal-aware lexer for Rust sources.
//!
//! The linter's rules are textual, so the first job is separating the three
//! channels a `.rs` file interleaves:
//!
//! * **code** — what the compiler sees; this is where rules match,
//! * **comments** — stripped from code, but kept per line so justification
//!   markers (`// lint: sorted`) can be looked up, and
//! * **string/char literals** — blanked out of the code channel (the quotes
//!   survive as anchors) so `"partial_cmp(x).unwrap()"` inside a test
//!   fixture string or a doc example can never trip a rule.
//!
//! The lexer handles nested block comments, escaped string literals, raw
//! (and byte/raw-byte) strings with arbitrary `#` fences, character
//! literals, and the char-vs-lifetime ambiguity (`'a'` vs `<'a>`). It does
//! *not* parse Rust — downstream rules work on the cleaned text with
//! balanced-delimiter scanning, which is exactly as much syntax as the
//! invariants need. No external parser dependencies: the repo builds
//! offline (see `vendor/README.md`).

/// One source file split into per-line code and comment channels.
///
/// Both vectors have identical length — one entry per source line — and the
/// code channel preserves every newline of the original, so a byte offset
/// into [`joined`](CleanFile::joined) maps 1:1 to a source line number.
#[derive(Debug, Clone)]
pub struct CleanFile {
    /// Code with comments removed and literal contents blanked.
    pub code_lines: Vec<String>,
    /// Comment text (including the `//` / `/*` markers), per line.
    pub comment_lines: Vec<String>,
    /// Every string literal's contents, anchored to its opening quote in
    /// the code channel (the cross-file contract rules read names —
    /// `SDEA_*` variables, obs metric paths, blob kinds — back out of the
    /// blanked code through these).
    pub literals: Vec<Literal>,
}

/// One string literal captured during lexing.
#[derive(Debug, Clone)]
pub struct Literal {
    /// 0-based line of the opening quote anchor in the code channel.
    pub line: usize,
    /// Byte column of the opening quote anchor within that code line.
    pub col: usize,
    /// The literal's contents (escape sequences kept verbatim).
    pub text: String,
    /// Was this a byte (`b"…"` / `br"…"`) string?
    pub byte_string: bool,
}

impl CleanFile {
    /// The code channel as one `\n`-joined string.
    pub fn joined(&self) -> String {
        self.code_lines.join("\n")
    }
}

/// Lexes `src` into its code and comment channels. Never panics on
/// malformed input (unterminated literals simply run to end of file).
pub fn clean(src: &str) -> CleanFile {
    Lexer::new(src).run()
}

struct Lexer {
    ch: Vec<char>,
    i: usize,
    code: Vec<String>,
    com: Vec<String>,
    lits: Vec<Literal>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            ch: src.chars().collect(),
            i: 0,
            code: vec![String::new()],
            com: vec![String::new()],
            lits: Vec::new(),
        }
    }

    /// Opens a literal record anchored at the *next* code-channel byte
    /// (call just before pushing the opening quote anchor).
    fn open_literal(&mut self, byte_string: bool) {
        let line = self.code.len() - 1;
        let col = self.code.last().map(|l| l.len()).unwrap_or(0);
        self.lits.push(Literal { line, col, text: String::new(), byte_string });
    }

    fn push_lit(&mut self, c: char) {
        if let Some(l) = self.lits.last_mut() {
            l.text.push(c);
        }
    }

    fn at(&self, k: usize) -> Option<char> {
        self.ch.get(self.i + k).copied()
    }

    fn newline(&mut self) {
        self.code.push(String::new());
        self.com.push(String::new());
    }

    fn push_code(&mut self, c: char) {
        self.code.last_mut().expect("line buffer").push(c);
    }

    fn push_com(&mut self, c: char) {
        self.com.last_mut().expect("line buffer").push(c);
    }

    fn run(mut self) -> CleanFile {
        while self.i < self.ch.len() {
            let c = self.ch[self.i];
            match c {
                '\n' => {
                    self.newline();
                    self.i += 1;
                }
                '/' if self.at(1) == Some('/') => self.line_comment(),
                '/' if self.at(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(false),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' if !self.prev_is_ident() => {
                    if !self.literal_prefix() {
                        self.push_code(c);
                        self.i += 1;
                    }
                }
                _ => {
                    self.push_code(c);
                    self.i += 1;
                }
            }
        }
        CleanFile { code_lines: self.code, comment_lines: self.com, literals: self.lits }
    }

    /// True when the char before `self.i` continues an identifier, meaning
    /// an `r`/`b` here is the tail of a name, not a literal prefix.
    fn prev_is_ident(&self) -> bool {
        self.i > 0 && {
            let p = self.ch[self.i - 1];
            p.is_alphanumeric() || p == '_'
        }
    }

    /// Tries to consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'`
    /// starting at the current `r`/`b`. Returns false if this is not a
    /// literal prefix (plain identifier), consuming nothing.
    fn literal_prefix(&mut self) -> bool {
        let mut k = 1; // chars of prefix after the first
        let byte_string = self.ch[self.i] == 'b';
        let mut raw = self.ch[self.i] == 'r';
        if byte_string {
            match self.at(1) {
                Some('\'') => {
                    // byte char literal: skip the `b`, lex the char part.
                    self.i += 1;
                    self.char_or_lifetime();
                    return true;
                }
                Some('r') => {
                    raw = true;
                    k = 2;
                }
                Some('"') => {}
                _ => return false,
            }
        }
        if raw {
            let mut hashes = 0;
            while self.at(k) == Some('#') {
                hashes += 1;
                k += 1;
            }
            if self.at(k) != Some('"') {
                return false;
            }
            self.i += k + 1; // past prefix, hashes and opening quote
            self.open_literal(byte_string);
            self.push_code('"');
            self.raw_string_tail(hashes);
            true
        } else {
            if self.at(k) != Some('"') {
                return false;
            }
            self.i += k; // position on the quote
            self.string_literal(byte_string);
            true
        }
    }

    fn line_comment(&mut self) {
        while self.i < self.ch.len() && self.ch[self.i] != '\n' {
            self.push_com(self.ch[self.i]);
            self.i += 1;
        }
        self.push_code(' ');
    }

    fn block_comment(&mut self) {
        self.push_com('/');
        self.push_com('*');
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.ch.len() && depth > 0 {
            match self.ch[self.i] {
                '\n' => {
                    self.newline();
                    self.i += 1;
                }
                '/' if self.at(1) == Some('*') => {
                    depth += 1;
                    self.push_com('/');
                    self.push_com('*');
                    self.i += 2;
                }
                '*' if self.at(1) == Some('/') => {
                    depth -= 1;
                    self.push_com('*');
                    self.push_com('/');
                    self.i += 2;
                }
                c => {
                    self.push_com(c);
                    self.i += 1;
                }
            }
        }
        self.push_code(' ');
    }

    /// Consumes a `"…"` literal (cursor on the opening quote), blanking the
    /// contents but keeping both quotes and any interior newlines. The
    /// contents are recorded on the literal channel, escapes verbatim.
    fn string_literal(&mut self, byte_string: bool) {
        self.open_literal(byte_string);
        self.push_code('"');
        self.i += 1;
        while self.i < self.ch.len() {
            match self.ch[self.i] {
                '"' => {
                    self.push_code('"');
                    self.i += 1;
                    return;
                }
                '\\' => {
                    // escaped char, never terminates
                    self.push_lit('\\');
                    if let Some(e) = self.at(1) {
                        self.push_lit(e);
                    }
                    self.i += 2;
                }
                '\n' => {
                    self.push_lit('\n');
                    self.newline();
                    self.i += 1;
                }
                c => {
                    self.push_lit(c);
                    self.i += 1;
                }
            }
        }
    }

    /// Consumes the tail of a raw string whose fence is `hashes` `#`s
    /// (cursor just past the opening quote).
    fn raw_string_tail(&mut self, hashes: usize) {
        while self.i < self.ch.len() {
            if self.ch[self.i] == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.at(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.push_code('"');
                    self.i += 1 + hashes;
                    return;
                }
            }
            let c = self.ch[self.i];
            self.push_lit(c);
            if c == '\n' {
                self.newline();
            }
            self.i += 1;
        }
    }

    /// Disambiguates `'x'` / `'\n'` (char literals, blanked) from `'a`
    /// (lifetimes, kept as code). Cursor on the `'`.
    fn char_or_lifetime(&mut self) {
        if self.at(1) == Some('\\') {
            // escaped char literal: skip the escaped char, then scan to the
            // closing quote (covers \', \u{…}, \x7f).
            self.push_code('\'');
            self.i += 3;
            while self.i < self.ch.len() && self.ch[self.i] != '\'' && self.ch[self.i] != '\n' {
                self.i += 1;
            }
            if self.at(0) == Some('\'') {
                self.i += 1;
            }
            self.push_code('\'');
        } else if self.at(2) == Some('\'') && self.at(1) != Some('\'') {
            // simple one-char literal 'x'
            self.push_code('\'');
            self.push_code('\'');
            self.i += 3;
        } else {
            // lifetime or loop label: keep the tick as code
            self.push_code('\'');
            self.i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> String {
        clean(src).joined()
    }

    fn comments(src: &str) -> String {
        clean(src).comment_lines.join("\n")
    }

    #[test]
    fn line_comments_move_to_comment_channel() {
        let src = "let x = 1; // lint: sorted\nlet y = 2;";
        assert!(!code(src).contains("sorted"));
        assert!(comments(src).contains("lint: sorted"));
        assert!(code(src).contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still comment */ b";
        let c = code(src);
        assert!(c.contains('a') && c.contains('b'));
        assert!(!c.contains("still"));
        assert!(comments(src).contains("still comment"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let src = r#"let s = "partial_cmp(x).unwrap()"; s.len()"#;
        let c = code(src);
        assert!(!c.contains("partial_cmp"));
        assert!(c.contains(r#"let s = """#));
        assert!(c.contains("s.len()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a\"b// not a comment"; real()"#;
        let c = code(src);
        assert!(c.contains("real()"));
        assert!(!c.contains("not a comment"));
        assert!(comments(src).is_empty() || !comments(src).contains("not a comment"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"contains "quotes" and // slashes"#; tail()"###;
        let c = code(src);
        assert!(c.contains("tail()"));
        assert!(!c.contains("slashes"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r##"let a = b"HashMap"; let b2 = br#"HashSet"#; end()"##;
        let c = code(src);
        assert!(!c.contains("HashMap") && !c.contains("HashSet"));
        assert!(c.contains("end()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src =
            "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = '{'; 'l: loop { break 'l; } d }";
        let c = code(src);
        assert!(c.contains("<'a>"), "lifetime kept: {c}");
        assert!(c.contains("&'a str"));
        // the '{' char literal is blanked, so delimiters stay balanced
        assert_eq!(c.matches('{').count(), c.matches('}').count(), "balanced braces in {c}");
        assert!(c.contains("'l: loop"));
    }

    #[test]
    fn multiline_string_preserves_line_count() {
        let src = "let s = \"one\ntwo\nthree\";\nafter();";
        let f = clean(src);
        assert_eq!(f.code_lines.len(), 4);
        assert_eq!(f.code_lines[3], "after();");
    }

    #[test]
    fn literal_channel_captures_contents_and_anchor() {
        let src = "const K: &[u8; 4] = b\"SDT2\";\nlet s = \"eval.hits\";";
        let f = clean(src);
        assert_eq!(f.literals.len(), 2);
        let k = &f.literals[0];
        assert_eq!(k.text, "SDT2");
        assert!(k.byte_string);
        assert_eq!(k.line, 0);
        // anchor points at the opening quote in the blanked code channel
        assert_eq!(f.code_lines[k.line].as_bytes()[k.col], b'"');
        let s = &f.literals[1];
        assert_eq!(s.text, "eval.hits");
        assert!(!s.byte_string);
        assert_eq!(s.line, 1);
        assert_eq!(f.code_lines[s.line].as_bytes()[s.col], b'"');
    }

    #[test]
    fn literal_channel_raw_and_escaped() {
        let src = r###"let a = r#"raw "stuff""#; let b = "tab\tend";"###;
        let f = clean(src);
        assert_eq!(f.literals.len(), 2);
        assert_eq!(f.literals[0].text, r#"raw "stuff""#);
        assert!(!f.literals[0].byte_string);
        assert_eq!(f.literals[1].text, r"tab\tend");
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let src = "let var\" = 0;"; // pathological, but `var` must not eat the quote as r-prefix
        let c = code(src);
        assert!(c.contains("var\""));
    }
}
