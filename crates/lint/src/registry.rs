//! The committed contract registries: `env_registry.toml`,
//! `obs_registry.toml` and `blob_registry.toml` at the workspace root.
//!
//! Like `lint_baseline.toml` these are a deliberately tiny TOML subset —
//! sections of `key = "value"` lines — parsed by hand so the linter stays
//! dependency-free, with malformed lines as hard errors (the files are
//! small, reviewed, and any drift means trouble). A *missing* registry
//! file parses as empty: in a real workspace every contract name then
//! fires as unregistered (nothing is silently waved through), while the
//! linter's own miniature test repos, which have no contract surfaces at
//! all, stay clean.

use std::collections::BTreeMap;

/// One `env_registry.toml` entry: `SDEA_X = "type | default | owner"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvEntry {
    /// Value type as documented (`usize`, `bool`, `enum(quick/full)`, …).
    pub ty: String,
    /// Default when unset (free text, e.g. `ncpus` or `unset`).
    pub default: String,
    /// Crate key of the owning reader.
    pub owner: String,
    /// 1-based line in the registry file (dead-entry diagnostics).
    pub line: usize,
}

/// Parsed `env_registry.toml`.
#[derive(Debug, Clone, Default)]
pub struct EnvRegistry {
    pub vars: BTreeMap<String, EnvEntry>,
}

/// One `obs_registry.toml` entry: the owner is a crate key (`"serve"`) or,
/// for module-scoped names, a path prefix (`"crates/core/src/rerank"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEntry {
    pub owner: String,
    pub line: usize,
}

/// Parsed `obs_registry.toml`: three sections, one per name kind.
#[derive(Debug, Clone, Default)]
pub struct ObsRegistry {
    pub spans: BTreeMap<String, ObsEntry>,
    pub counters: BTreeMap<String, ObsEntry>,
    pub histograms: BTreeMap<String, ObsEntry>,
}

impl ObsRegistry {
    /// The section for one name kind.
    pub fn table(&self, kind: crate::model::ObsKind) -> &BTreeMap<String, ObsEntry> {
        match kind {
            crate::model::ObsKind::Span => &self.spans,
            crate::model::ObsKind::Counter => &self.counters,
            crate::model::ObsKind::Histogram => &self.histograms,
        }
    }
}

/// One `blob_registry.toml` entry: `SDT2 = "v2 | crates/tensor/src/serialize.rs"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlobEntry {
    /// Container format version, `v<digits>`.
    pub version: String,
    /// Workspace-relative file defining the kind constant.
    pub file: String,
    pub line: usize,
}

/// Parsed `blob_registry.toml`.
#[derive(Debug, Clone, Default)]
pub struct BlobRegistry {
    pub kinds: BTreeMap<String, BlobEntry>,
}

/// Splits one `key = "value"` line of the TOML subset.
fn key_value(line: &str) -> Option<(String, String)> {
    let (key, value) = line.split_once('=')?;
    let value = value.trim();
    let value = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')).unwrap_or(value);
    Some((key.trim().trim_matches('"').to_string(), value.to_string()))
}

/// Parses `env_registry.toml`: a single `[env]` section of
/// `NAME = "type | default | owner"` lines.
pub fn parse_env(text: &str) -> Result<EnvRegistry, String> {
    let mut reg = EnvRegistry::default();
    let mut in_env = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |m: &str| format!("env_registry.toml:{}: {m} ({raw:?})", i + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_env = section.trim() == "env";
            if !in_env {
                return Err(at("unknown section"));
            }
            continue;
        }
        if !in_env {
            return Err(at("entry outside [env]"));
        }
        let (key, value) = key_value(line).ok_or_else(|| at("expected `NAME = \"...\"`"))?;
        if !crate::model::is_env_var_name(&key) {
            return Err(at("key must be an exact SDEA_* variable name"));
        }
        let parts: Vec<&str> = value.split('|').map(str::trim).collect();
        let [ty, default, owner] = parts.as_slice() else {
            return Err(at("value must be `type | default | owner`"));
        };
        if ty.is_empty() || default.is_empty() || owner.is_empty() {
            return Err(at("type, default and owner must all be non-empty"));
        }
        reg.vars.insert(
            key,
            EnvEntry {
                ty: ty.to_string(),
                default: default.to_string(),
                owner: owner.to_string(),
                line: i + 1,
            },
        );
    }
    Ok(reg)
}

/// Parses `obs_registry.toml`: `[span]` / `[counter]` / `[histogram]`
/// sections of `"dotted.name" = "owner"` lines.
pub fn parse_obs(text: &str) -> Result<ObsRegistry, String> {
    let mut reg = ObsRegistry::default();
    let mut section: Option<&str> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |m: &str| format!("obs_registry.toml:{}: {m} ({raw:?})", i + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(s) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = match s.trim() {
                "span" => Some("span"),
                "counter" => Some("counter"),
                "histogram" => Some("histogram"),
                _ => return Err(at("unknown section")),
            };
            continue;
        }
        let Some(sec) = section else {
            return Err(at("entry outside [span]/[counter]/[histogram]"));
        };
        let (key, value) = key_value(line).ok_or_else(|| at("expected `\"name\" = \"owner\"`"))?;
        if key.is_empty() || value.is_empty() {
            return Err(at("name and owner must be non-empty"));
        }
        let entry = ObsEntry { owner: value, line: i + 1 };
        let table = match sec {
            "span" => &mut reg.spans,
            "counter" => &mut reg.counters,
            _ => &mut reg.histograms,
        };
        table.insert(key, entry);
    }
    Ok(reg)
}

/// Parses `blob_registry.toml`: a single `[blob]` section of
/// `KIND = "v<N> | defining/file.rs"` lines.
pub fn parse_blob(text: &str) -> Result<BlobRegistry, String> {
    let mut reg = BlobRegistry::default();
    let mut in_blob = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |m: &str| format!("blob_registry.toml:{}: {m} ({raw:?})", i + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_blob = section.trim() == "blob";
            if !in_blob {
                return Err(at("unknown section"));
            }
            continue;
        }
        if !in_blob {
            return Err(at("entry outside [blob]"));
        }
        let (key, value) = key_value(line).ok_or_else(|| at("expected `KIND = \"...\"`"))?;
        if key.len() != 4 || !key.starts_with("SD") {
            return Err(at("key must be a 4-byte kind starting with SD"));
        }
        let parts: Vec<&str> = value.split('|').map(str::trim).collect();
        let [version, file] = parts.as_slice() else {
            return Err(at("value must be `v<N> | defining/file.rs`"));
        };
        let digits = version.strip_prefix('v').unwrap_or("");
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(at("version must be v<digits>"));
        }
        if file.is_empty() {
            return Err(at("defining file must be non-empty"));
        }
        reg.kinds.insert(
            key,
            BlobEntry { version: version.to_string(), file: file.to_string(), line: i + 1 },
        );
    }
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_round_trip_and_errors() {
        let reg = parse_env(
            "# comment\n[env]\nSDEA_THREADS = \"usize | ncpus | tensor\"\n\
             SDEA_OBS = \"bool | off | obs\"\n",
        )
        .unwrap();
        assert_eq!(reg.vars.len(), 2);
        let t = &reg.vars["SDEA_THREADS"];
        assert_eq!(
            (t.ty.as_str(), t.default.as_str(), t.owner.as_str()),
            ("usize", "ncpus", "tensor")
        );
        assert!(parse_env("[env]\nSDEA_X = \"usize | 0\"\n").is_err(), "missing owner");
        assert!(parse_env("[env]\nlowercase = \"a | b | c\"\n").is_err(), "bad key");
        assert!(parse_env("[other]\n").is_err());
        assert!(parse_env("SDEA_X = \"a | b | c\"\n").is_err(), "entry before section");
    }

    #[test]
    fn obs_sections_and_errors() {
        let reg = parse_obs(
            "[span]\n\"eval.csls\" = \"eval\"\n[counter]\n\"ckpt.writes\" = \"core\"\n\
             [histogram]\n\"serve.batch_size\" = \"serve\"\n",
        )
        .unwrap();
        assert_eq!(reg.spans["eval.csls"].owner, "eval");
        assert_eq!(reg.counters["ckpt.writes"].owner, "core");
        assert_eq!(reg.histograms["serve.batch_size"].owner, "serve");
        assert!(parse_obs("[gauge]\n").is_err());
        assert!(parse_obs("\"x\" = \"y\"\n").is_err(), "entry before section");
    }

    #[test]
    fn blob_format_and_errors() {
        let reg = parse_blob("[blob]\nSDT2 = \"v2 | crates/tensor/src/serialize.rs\"\n").unwrap();
        assert_eq!(reg.kinds["SDT2"].version, "v2");
        assert!(parse_blob("[blob]\nSDT2 = \"2 | f.rs\"\n").is_err(), "version needs v prefix");
        assert!(parse_blob("[blob]\nTOOLONGX = \"v1 | f.rs\"\n").is_err(), "kind must be 4 bytes");
        assert!(parse_blob("[blob]\nXDT2 = \"v1 | f.rs\"\n").is_err(), "kind must start SD");
    }
}
