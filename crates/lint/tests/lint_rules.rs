//! Fixture-driven rule tests: every rule has one firing and one
//! non-firing snippet under `tests/fixtures/`. The fixtures hold
//! deliberate violations, so the workspace walker skips that directory;
//! here each one is analyzed under a representative workspace path.

use sdea_lint::{check_file, Analysis, Diagnostic, RULES};

fn diags(rel: &str, src: &str) -> Vec<Diagnostic> {
    check_file(&Analysis::new(rel, src))
}

fn rules_fired(rel: &str, src: &str) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = diags(rel, src).iter().map(|d| d.rule).collect();
    ids.dedup();
    ids
}

#[test]
fn d1_hash_iteration_fires_on_all_three_shapes() {
    let src = include_str!("fixtures/d1_hash_iter_fail.rs");
    let d = diags("crates/core/src/fixture.rs", src);
    assert!(d.iter().all(|x| x.rule == "D-HASH-ITER"), "{d:?}");
    assert_eq!(d.len(), 3, "param method call, for-in local, field receiver: {d:?}");
}

#[test]
fn d1_lookups_ordered_maps_justifications_and_tests_pass() {
    let src = include_str!("fixtures/d1_hash_iter_pass.rs");
    assert_eq!(diags("crates/core/src/fixture.rs", src), vec![]);
}

#[test]
fn d2_spawn_fires_outside_par_only() {
    let src = include_str!("fixtures/d2_spawn_fail.rs");
    assert_eq!(rules_fired("crates/core/src/fixture.rs", src), vec!["D-THREAD-SPAWN"]);
    assert_eq!(diags("crates/tensor/src/par.rs", src), vec![], "the fork-join runtime may spawn");
}

#[test]
fn d2_spawn_in_strings_comments_and_tests_passes() {
    let src = include_str!("fixtures/d2_spawn_pass.rs");
    assert_eq!(diags("crates/core/src/fixture.rs", src), vec![]);
}

#[test]
fn d3_wall_clock_fires_outside_obs_and_bench() {
    let src = include_str!("fixtures/d3_time_fail.rs");
    let d = diags("crates/core/src/fixture.rs", src);
    assert_eq!(d.len(), 2, "Instant and SystemTime: {d:?}");
    assert!(d.iter().all(|x| x.rule == "D-WALL-CLOCK"));
    assert_eq!(diags("crates/obs/src/fixture.rs", src), vec![]);
    assert_eq!(diags("crates/bench/src/fixture.rs", src), vec![]);
}

#[test]
fn d3_durations_and_test_timing_pass() {
    let src = include_str!("fixtures/d3_time_pass.rs");
    assert_eq!(diags("crates/core/src/fixture.rs", src), vec![]);
}

#[test]
fn n1_partial_cmp_unwrap_fires_across_line_breaks() {
    let src = include_str!("fixtures/n1_partial_cmp_fail.rs");
    let d = diags("crates/eval/src/fixture.rs", src);
    assert!(d.iter().all(|x| x.rule == "N-PARTIAL-CMP"), "{d:?}");
    let lines: Vec<usize> = d.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![8, 12, 17], "single-line, multi-line, expect: {d:?}");

    // The multi-line case is the one the old single-line grep gate in
    // ci.sh provably missed: no individual line matches its regex.
    let grep =
        |l: &&str| l.contains("partial_cmp") && (l.contains("unwrap") || l.contains("expect"));
    let line12: Vec<&str> = src.lines().skip(11).take(2).collect();
    assert!(!line12.iter().any(grep), "fixture must keep the chain split over two lines");
}

#[test]
fn n1_comments_strings_and_handled_options_pass() {
    let src = include_str!("fixtures/n1_partial_cmp_pass.rs");
    assert_eq!(diags("crates/eval/src/fixture.rs", src), vec![]);
}

#[test]
fn n2_float_sort_fires_when_partial_cmp_cannot_panic_but_misorders() {
    let src = include_str!("fixtures/n2_float_sort_fail.rs");
    let fired = rules_fired("crates/eval/src/fixture.rs", src);
    assert_eq!(fired, vec!["N-FLOAT-SORT"], "unwrap_or(Equal) must not trip N-PARTIAL-CMP");
    assert_eq!(diags("crates/eval/src/fixture.rs", src).len(), 2, "sort_by and max_by");
}

#[test]
fn n2_total_cmp_desc_nan_last_and_justified_pass() {
    let src = include_str!("fixtures/n2_float_sort_pass.rs");
    assert_eq!(diags("crates/eval/src/fixture.rs", src), vec![]);
}

#[test]
fn a1_raw_writes_fire() {
    let src = include_str!("fixtures/a1_raw_write_fail.rs");
    let d = diags("crates/kg/src/fixture.rs", src);
    assert_eq!(d.len(), 2, "fs::write and File::create: {d:?}");
    assert!(d.iter().all(|x| x.rule == "A-RAW-WRITE"));
}

#[test]
fn a1_atomic_writes_reads_and_test_scratch_pass() {
    let src = include_str!("fixtures/a1_raw_write_pass.rs");
    assert_eq!(diags("crates/kg/src/fixture.rs", src), vec![]);
}

#[test]
fn u1_forbid_unsafe_checked_on_crate_roots_only() {
    let missing = include_str!("fixtures/u1_forbid_missing.rs");
    let present = include_str!("fixtures/u1_forbid_present.rs");
    assert_eq!(rules_fired("crates/kg/src/lib.rs", missing), vec!["U-FORBID-UNSAFE"]);
    assert_eq!(diags("crates/kg/src/lib.rs", present), vec![]);
    assert_eq!(diags("crates/kg/src/io.rs", missing), vec![], "non-root files are exempt");
}

#[test]
fn vendor_answers_only_for_forbid_unsafe() {
    // A vendored file full of would-be violations: only U applies, and
    // only at the crate root.
    let src = include_str!("fixtures/d3_time_fail.rs");
    assert_eq!(rules_fired("vendor/proptest/src/lib.rs", src), vec!["U-FORBID-UNSAFE"]);
    assert_eq!(diags("vendor/proptest/src/strategy.rs", src), vec![]);
}

#[test]
fn every_rule_has_a_stable_id_and_description() {
    let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(
        ids,
        vec![
            "D-HASH-ITER",
            "D-THREAD-SPAWN",
            "D-WALL-CLOCK",
            "N-PARTIAL-CMP",
            "N-FLOAT-SORT",
            "A-RAW-WRITE",
            "P-PANIC-BUDGET",
            "U-FORBID-UNSAFE",
            "R-ENV-STRICT",
            "R-ENV-REGISTRY",
            "R-OBS-NAMES",
            "R-BLOB-KIND",
            "R-FPRINT-COVERAGE"
        ]
    );
    assert!(RULES.iter().all(|r| !r.description.is_empty() && !r.scope.is_empty()));
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let src = include_str!("fixtures/d2_spawn_fail.rs");
    let d = diags("crates/core/src/fixture.rs", src);
    let shown = d[0].to_string();
    assert!(shown.starts_with("crates/core/src/fixture.rs:4: D-THREAD-SPAWN: "), "{shown}");
}
