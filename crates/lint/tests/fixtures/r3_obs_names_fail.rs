//! R-OBS-NAMES firing fixture: an unregistered span name, plus a counter
//! recorded from outside its owning crate.

pub fn record() {
    let _span = sdea_obs::span("fixture.unregistered");
    sdea_obs::add("serve.requests", 1);
}
