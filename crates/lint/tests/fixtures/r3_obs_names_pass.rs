//! R-OBS-NAMES non-firing fixture: both names are registered to the
//! crate this fixture is analyzed under.

pub fn record() {
    let _span = sdea_obs::span("fixture.work");
    sdea_obs::add("fixture.items", 1);
}
