//! A-RAW-WRITE non-firing fixture: writes go through the atomic layer,
//! reads are unrestricted, and test code may write scratch files freely.
use std::path::Path;

pub fn persist(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    sdea_tensor::serialize::atomic_write(path, bytes, "fixture.persist")
}

pub fn load(path: &Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_in_tests_are_fine() {
        let p = std::env::temp_dir().join("lint_fixture_scratch");
        std::fs::write(&p, b"x").unwrap();
        let _ = std::fs::remove_file(&p);
    }
}
