//! D-WALL-CLOCK firing fixture: wall-clock reads outside obs/bench.
pub fn seed_from_clock() -> u64 {
    let t = std::time::SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|e| e.as_nanos() as u64).unwrap_or(0)
}

pub fn spin(us: u64) {
    let start = std::time::Instant::now();
    while start.elapsed().as_micros() < u128::from(us) {}
}
