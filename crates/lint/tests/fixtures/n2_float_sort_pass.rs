//! N-FLOAT-SORT non-firing fixture: total_cmp and desc_nan_last
//! comparators, comparator-free sorts on Ord keys, and a justified
//! partial_cmp comparator on data that is NaN-free by construction.
use std::cmp::Ordering;

fn desc_nan_last(a: f32, b: f32) -> Ordering {
    b.total_cmp(&a)
}

pub fn sanctioned(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.sort_by(|a, b| desc_nan_last(*a, *b));
}

pub fn ord_keys(xs: &mut [(u32, String)]) {
    xs.sort_by(|a, b| a.0.cmp(&b.0));
}

pub fn justified(xs: &mut [f32]) {
    // Values come straight from ln(1 + n) over counts: finite by construction.
    // lint: nan-ordered
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}
