//! R-ENV-REGISTRY non-firing fixture: the read, the registry entry, and
//! the README row all agree.

pub fn knob() -> Option<usize> {
    sdea_obs::env::parse_or_exit::<usize>("SDEA_FIXTURE_REG", "a count")
}
