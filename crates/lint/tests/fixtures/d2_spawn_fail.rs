//! D-THREAD-SPAWN firing fixture: ad-hoc thread creation in production
//! code outside `sdea_tensor::par`.
pub fn race_the_runtime() {
    let h = std::thread::spawn(|| 40 + 2);
    let _ = h.join();
}
