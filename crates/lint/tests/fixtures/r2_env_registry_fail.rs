//! R-ENV-REGISTRY firing fixture: the variable is read through a strict
//! helper but has no registry entry (and the paired test registry holds a
//! dead entry for a variable nothing reads).

pub fn knob() -> Option<usize> {
    sdea_obs::env::parse_or_exit::<usize>("SDEA_FIXTURE_UNREG", "a count")
}
