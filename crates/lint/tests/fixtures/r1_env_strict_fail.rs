//! R-ENV-STRICT firing fixture: raw `std::env` reads of `SDEA_*`
//! variables in production code silently fall back on malformed values.

pub fn report_dir() -> std::path::PathBuf {
    std::env::var("SDEA_FIXTURE_DIR").unwrap_or_else(|_| "results".into()).into()
}

pub fn arm_faults() {
    if let Ok(spec) = std::env::var("SDEA_FIXTURE_FAULT") {
        drop(spec);
    }
}
