//! D-WALL-CLOCK non-firing fixture: Duration values (no clock read) are
//! fine anywhere, and test code may time things.
pub fn backoff() -> std::time::Duration {
    std::time::Duration::from_millis(5)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_clocks() {
        let _ = std::time::Instant::now();
    }
}
