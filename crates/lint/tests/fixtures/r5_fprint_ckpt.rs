//! Shared fingerprint-body fixture for R-FPRINT-COVERAGE (analyzed as
//! crates/core/src/checkpoint.rs): references `dim` and `covered` only.

pub fn config_fingerprint(cfg: &SdeaConfig) -> u64 {
    let text = format!("{}|{}", cfg.dim, cfg.covered);
    text.len() as u64
}
