//! N-PARTIAL-CMP firing fixture. The second case spreads the call chain
//! over two lines — exactly the shape the old single-line grep gate in
//! ci.sh provably missed — and the third uses .expect(), which the grep
//! never matched at all.
use std::cmp::Ordering;

pub fn single_line(a: f32, b: f32) -> Ordering {
    a.partial_cmp(&b).unwrap()
}

pub fn multi_line(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b)
        .unwrap()
}

pub fn with_expect(a: f32, b: f32) -> Ordering {
    a.partial_cmp(&b).expect("finite")
}
