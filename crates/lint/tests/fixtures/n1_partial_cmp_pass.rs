//! N-PARTIAL-CMP non-firing fixture: total_cmp is the sanctioned total
//! order; partial_cmp is fine when its Option is handled; and mentioning
//! partial_cmp(x).unwrap() in a comment or a string literal — like this
//! doc sentence — must never trip the literal-aware lexer.
use std::cmp::Ordering;

pub fn total(a: f32, b: f32) -> Ordering {
    a.total_cmp(&b)
}

pub fn handled(a: f32, b: f32) -> Ordering {
    a.partial_cmp(&b).unwrap_or(Ordering::Equal)
}

pub const ADVICE: &str = "never write partial_cmp(x).unwrap() on floats";
