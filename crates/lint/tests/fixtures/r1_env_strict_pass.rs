//! R-ENV-STRICT non-firing fixture: strict helpers, error-message
//! mentions, and test-only raw reads are all fine.

pub fn threads() -> Option<usize> {
    sdea_obs::env::parse_or_exit::<usize>("SDEA_FIXTURE_THREADS", "a thread count")
}

pub fn fixture_dir() -> Option<String> {
    sdea_obs::env::string_or_exit("SDEA_FIXTURE_DIR")
}

pub fn explain() -> &'static str {
    // A variable name inside a message is a mention, not a read site.
    "set SDEA_FIXTURE_DIR to override the output directory"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_touch_the_raw_environment() {
        std::env::set_var("SDEA_FIXTURE_DIR", "x");
        let _ = std::env::var("SDEA_FIXTURE_DIR");
        std::env::remove_var("SDEA_FIXTURE_DIR");
    }
}
