//! R-FPRINT-COVERAGE firing fixture (analyzed as
//! crates/core/src/config.rs): `uncovered` neither enters the
//! fingerprint nor carries a justification, and `covered` carries a
//! stale exclusion while the fingerprint still references it.

pub struct SdeaConfig {
    pub dim: usize,
    pub uncovered: usize,
    // fingerprint: excluded(stale — the fingerprint references this)
    pub covered: usize,
}
