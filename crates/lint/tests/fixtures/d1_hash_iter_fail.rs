//! D-HASH-ITER firing fixture: hash-ordered iteration in (what the test
//! presents as) a compute crate, three shapes — method call on a
//! parameter binding, `for .. in` over a local, and a field receiver.
use std::collections::{HashMap, HashSet};

pub struct Index {
    by_len: HashMap<usize, Vec<u32>>,
}

pub fn keys_of(table: &HashMap<String, u64>) -> Vec<String> {
    table.keys().cloned().collect()
}

pub fn sum_all(items: &[u32]) -> u64 {
    let dedup: HashSet<u32> = items.iter().copied().collect();
    let mut total = 0u64;
    for v in &dedup {
        total += u64::from(*v);
    }
    total
}

impl Index {
    pub fn flatten(&self) -> Vec<u32> {
        self.by_len.values().flatten().copied().collect()
    }
}
