//! A-RAW-WRITE firing fixture: raw destination writes that a crash can
//! leave truncated.
use std::path::Path;

pub fn dump(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}

pub fn open_for_write(path: &Path) -> std::io::Result<std::fs::File> {
    std::fs::File::create(path)
}
