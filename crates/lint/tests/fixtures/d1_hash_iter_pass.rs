//! D-HASH-ITER non-firing fixture: lookups are fine, ordered collections
//! are fine, justified iteration is fine, and test code is exempt.
use std::collections::{BTreeMap, HashMap};

pub fn lookup(table: &HashMap<String, u64>, k: &str) -> Option<u64> {
    table.get(k).copied()
}

pub fn ordered_values(tree: &BTreeMap<String, u64>) -> Vec<u64> {
    tree.values().copied().collect()
}

pub fn justified(table: &HashMap<String, u64>) -> Vec<String> {
    let mut ks: Vec<String> = table.keys().cloned().collect(); // lint: sorted (next line)
    ks.sort();
    ks
}

pub fn justified_above(table: &HashMap<String, u64>) -> u64 {
    // Summation is order-free: + on u64 is commutative and associative.
    // lint: sorted
    table.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    pub fn test_code_is_exempt(m: &HashMap<u32, u32>) -> u32 {
        m.values().sum()
    }
}
