//! N-FLOAT-SORT firing fixture: comparators built on partial_cmp without
//! a NaN-total wrapper. `unwrap_or(Equal)` does not panic, so N-PARTIAL-CMP
//! stays silent — but NaN still silently misorders, which is this rule's
//! whole point.
use std::cmp::Ordering;

pub fn sneaky_sort(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}

pub fn sneaky_max(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Less))
}
