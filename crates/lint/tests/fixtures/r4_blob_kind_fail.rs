//! R-BLOB-KIND firing fixture: the kind is unregistered, defined twice,
//! and no test references the constant.

pub const FIXTURE_KIND: &[u8; 4] = b"SDFX";
pub const FIXTURE_KIND_COPY: &[u8; 4] = b"SDFX";
