//! U-FORBID-UNSAFE firing fixture: a crate root without the attribute.
pub fn looks_innocent() {}
