//! R-FPRINT-COVERAGE non-firing fixture (analyzed as
//! crates/core/src/config.rs): every field is fingerprinted or
//! justified.

pub struct SdeaConfig {
    pub dim: usize,
    pub covered: usize,
    // fingerprint: excluded(execution knob; never shapes results)
    pub threads: usize,
}
