//! D-THREAD-SPAWN non-firing fixture: no thread creation in production
//! code; test regions may spawn (e.g. kill-and-resume child processes),
//! and talking about spawn() in comments or strings is fine.
pub fn describe() -> &'static str {
    "workers are spawn(ed) by sdea_tensor::par only"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_spawn() {
        std::thread::spawn(|| ()).join().unwrap();
    }
}
