//! R-BLOB-KIND non-firing fixture: one registered kind, pinned by a
//! round-trip test that names the constant.

pub const FIXTURE_KIND: &[u8; 4] = b"SDFX";

#[cfg(test)]
mod tests {
    #[test]
    fn header_round_trip() {
        assert_eq!(super::FIXTURE_KIND, b"SDFX");
    }
}
