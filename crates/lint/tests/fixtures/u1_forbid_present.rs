//! U-FORBID-UNSAFE non-firing fixture: the attribute is present.

#![forbid(unsafe_code)]

pub fn safe() {}
