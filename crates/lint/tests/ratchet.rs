//! End-to-end ratchet tests against a miniature workspace on disk:
//! baseline bootstrap, the only-decreases direction, and the refusal to
//! launder an increase through `--update-baseline`.

use sdea_lint::workspace;
use std::path::PathBuf;

/// One panic-capable call site, otherwise lint-clean.
const CRATE_SRC: &str = "#![forbid(unsafe_code)]\n\n\
    pub fn answer(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";

struct MiniRepo {
    root: PathBuf,
}

impl MiniRepo {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("sdea_lint_ratchet_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/foo/src")).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        std::fs::write(root.join("crates/foo/src/lib.rs"), CRATE_SRC).unwrap();
        MiniRepo { root }
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("lint_baseline.toml")
    }

    fn run(&self, update: bool) -> workspace::RunResult {
        workspace::run(&self.root, &self.baseline(), update).unwrap()
    }
}

impl Drop for MiniRepo {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn missing_baseline_fails_with_bootstrap_hint() {
    let repo = MiniRepo::new("missing");
    let res = repo.run(false);
    assert_eq!(res.files_scanned, 1);
    assert_eq!(res.diags.len(), 1, "{:?}", res.diags);
    assert_eq!(res.diags[0].rule, "P-PANIC-BUDGET");
    assert!(res.diags[0].msg.contains("--update-baseline"), "{}", res.diags[0].msg);
    assert!(!repo.baseline().exists(), "a plain run must not write the baseline");
}

#[test]
fn update_bootstraps_then_round_trips_clean() {
    let repo = MiniRepo::new("bootstrap");
    let res = repo.run(true);
    assert!(res.baseline_updated);
    assert!(res.diags.is_empty(), "{:?}", res.diags);

    let text = std::fs::read_to_string(repo.baseline()).unwrap();
    assert!(text.contains("foo = 1"), "{text}");

    // A second plain run against the file just written is clean and silent.
    let res = repo.run(false);
    assert!(res.diags.is_empty(), "{:?}", res.diags);
    assert!(res.notes.is_empty(), "{:?}", res.notes);
    assert!(!res.baseline_updated);
}

#[test]
fn decrease_passes_with_note_and_update_ratchets_down() {
    let repo = MiniRepo::new("decrease");
    std::fs::write(repo.baseline(), "[panic_budget]\nfoo = 5\n").unwrap();

    let res = repo.run(false);
    assert!(res.diags.is_empty(), "under budget must pass: {:?}", res.diags);
    assert!(res.notes.iter().any(|n| n.contains("5 -> 1")), "{:?}", res.notes);

    let res = repo.run(true);
    assert!(res.baseline_updated);
    let text = std::fs::read_to_string(repo.baseline()).unwrap();
    assert!(text.contains("foo = 1") && !text.contains("foo = 5"), "{text}");
}

#[test]
fn increase_fails_and_update_refuses_to_launder_it() {
    let repo = MiniRepo::new("increase");
    std::fs::write(repo.baseline(), "[panic_budget]\nfoo = 0\n").unwrap();

    let res = repo.run(false);
    assert_eq!(res.diags.len(), 1, "{:?}", res.diags);
    assert_eq!(res.diags[0].rule, "P-PANIC-BUDGET");
    assert!(res.diags[0].msg.contains("has 1") && res.diags[0].msg.contains("allows 0"));

    // --update-baseline must not rewrite the file while over budget.
    let res = repo.run(true);
    assert!(!res.baseline_updated);
    assert!(!res.diags.is_empty());
    let text = std::fs::read_to_string(repo.baseline()).unwrap();
    assert!(text.contains("foo = 0"), "baseline was laundered: {text}");
}

#[test]
fn unenrolled_crate_fails_with_enrollment_hint_not_a_regression() {
    let repo = MiniRepo::new("unenrolled");
    // The baseline exists but only knows some other crate: `foo` is a new
    // workspace crate that was never enrolled.
    std::fs::write(repo.baseline(), "[panic_budget]\nbar = 3\n").unwrap();

    let res = repo.run(false);
    assert_eq!(res.diags.len(), 1, "{:?}", res.diags);
    assert_eq!(res.diags[0].rule, "P-PANIC-BUDGET");
    let msg = &res.diags[0].msg;
    assert!(msg.contains("not enrolled"), "want the enrollment message, got: {msg}");
    assert!(msg.contains("--update-baseline"), "{msg}");
    assert!(!msg.contains("ratchets down"), "must not read as an over-budget regression: {msg}");

    // --update-baseline is exactly how a new crate gets enrolled.
    let res = repo.run(true);
    assert!(res.baseline_updated);
    let text = std::fs::read_to_string(repo.baseline()).unwrap();
    assert!(text.contains("foo = 1"), "{text}");
    assert!(repo.run(false).diags.is_empty());
}

#[test]
fn rule_violations_in_the_mini_repo_are_reported_with_paths() {
    let repo = MiniRepo::new("violation");
    std::fs::write(repo.baseline(), "[panic_budget]\nfoo = 1\n").unwrap();
    std::fs::write(
        repo.root.join("crates/foo/src/util.rs"),
        "pub fn go() { std::thread::spawn(|| {}); }\n",
    )
    .unwrap();

    let res = repo.run(false);
    assert_eq!(res.files_scanned, 2);
    assert_eq!(res.diags.len(), 1, "{:?}", res.diags);
    assert_eq!(res.diags[0].rule, "D-THREAD-SPAWN");
    assert_eq!(res.diags[0].file, "crates/foo/src/util.rs");
}
