//! Fixture-driven tests for the cross-file contract rules
//! (R-ENV-STRICT, R-ENV-REGISTRY, R-OBS-NAMES, R-BLOB-KIND,
//! R-FPRINT-COVERAGE), plus the registry-completeness gate: deleting any
//! single entry from a committed registry must fail the lint, so the
//! registries provably describe the code at HEAD.

use sdea_lint::contracts::{self, Registries};
use sdea_lint::model::{ObsKind, WorkspaceModel};
use sdea_lint::registry::{parse_blob, parse_env, parse_obs};
use sdea_lint::rules::Diagnostic;
use sdea_lint::{workspace, Analysis};
use std::path::Path;

fn model(files: &[(&str, &str)]) -> WorkspaceModel {
    let mut m = WorkspaceModel::default();
    for (rel, src) in files {
        m.absorb(&Analysis::new(rel, src));
    }
    m
}

fn regs(env: &str, obs: &str, blob: &str) -> Registries {
    Registries {
        env: parse_env(env).expect("env fixture registry"),
        env_path: "env_registry.toml".into(),
        obs: parse_obs(obs).expect("obs fixture registry"),
        obs_path: "obs_registry.toml".into(),
        blob: parse_blob(blob).expect("blob fixture registry"),
        blob_path: "blob_registry.toml".into(),
    }
}

fn fired(diags: &[Diagnostic], rule: &str) -> bool {
    diags.iter().any(|d| d.rule == rule)
}

#[test]
fn r1_env_strict_fires_on_raw_reads_only() {
    let fail = include_str!("fixtures/r1_env_strict_fail.rs");
    let d =
        contracts::check(&model(&[("crates/bench/src/fixture.rs", fail)]), &Registries::default());
    assert_eq!(d.iter().filter(|x| x.rule == "R-ENV-STRICT").count(), 2, "{d:?}");

    let pass = include_str!("fixtures/r1_env_strict_pass.rs");
    let d =
        contracts::check(&model(&[("crates/bench/src/fixture.rs", pass)]), &Registries::default());
    assert!(!fired(&d, "R-ENV-STRICT"), "{d:?}");

    // The strict-helper implementation itself is the one sanctioned caller.
    let d = contracts::check(&model(&[("crates/obs/src/env.rs", fail)]), &Registries::default());
    assert!(!fired(&d, "R-ENV-STRICT"), "{d:?}");
}

#[test]
fn r2_env_registry_fires_in_both_directions() {
    let fail = include_str!("fixtures/r2_env_registry_fail.rs");
    let m = model(&[("crates/core/src/fixture.rs", fail)]);
    let r = regs("[env]\nSDEA_FIXTURE_DEAD = \"usize | 1 | core\"\n", "", "[blob]\n");
    let d = contracts::check(&m, &r);
    assert!(d.iter().any(|x| x.msg.contains("`SDEA_FIXTURE_UNREG` is read here")), "{d:?}");
    assert!(d.iter().any(|x| x.msg.contains("dead registry entry: `SDEA_FIXTURE_DEAD`")), "{d:?}");

    let pass = include_str!("fixtures/r2_env_registry_pass.rs");
    let mut m = model(&[("crates/core/src/fixture.rs", pass)]);
    m.set_readme("| `SDEA_FIXTURE_REG` | usize | 1 | core |");
    let r = regs("[env]\nSDEA_FIXTURE_REG = \"usize | 1 | core\"\n", "", "[blob]\n");
    let d = contracts::check(&m, &r);
    assert!(!fired(&d, "R-ENV-REGISTRY"), "{d:?}");
}

#[test]
fn r3_obs_names_fires_on_unregistered_and_foreign_names() {
    let fail = include_str!("fixtures/r3_obs_names_fail.rs");
    let m = model(&[("crates/core/src/fixture.rs", fail)]);
    let r = regs("[env]\n", "[counter]\n\"serve.requests\" = \"serve\"\n", "[blob]\n");
    let d = contracts::check(&m, &r);
    assert!(
        d.iter().any(|x| x.msg.contains("unregistered span name `fixture.unregistered`")),
        "{d:?}"
    );
    assert!(d.iter().any(|x| x.msg.contains("owned by `serve`")), "{d:?}");

    let pass = include_str!("fixtures/r3_obs_names_pass.rs");
    let m = model(&[("crates/core/src/fixture.rs", pass)]);
    let r = regs(
        "[env]\n",
        "[span]\n\"fixture.work\" = \"core\"\n[counter]\n\"fixture.items\" = \"core\"\n",
        "[blob]\n",
    );
    let d = contracts::check(&m, &r);
    assert!(!fired(&d, "R-OBS-NAMES"), "{d:?}");
}

#[test]
fn r4_blob_kind_fires_on_unregistered_duplicate_untested() {
    let fail = include_str!("fixtures/r4_blob_kind_fail.rs");
    let m = model(&[("crates/tensor/src/fixture.rs", fail)]);
    let d = contracts::check(&m, &Registries::default());
    assert!(d.iter().any(|x| x.msg.contains("unregistered blob kind `SDFX`")), "{d:?}");
    assert!(d.iter().any(|x| x.msg.contains("defined more than once")), "{d:?}");
    assert!(d.iter().any(|x| x.msg.contains("no corruption/round-trip test")), "{d:?}");

    let pass = include_str!("fixtures/r4_blob_kind_pass.rs");
    let m = model(&[("crates/tensor/src/fixture.rs", pass)]);
    let r = regs("[env]\n", "", "[blob]\nSDFX = \"v1 | crates/tensor/src/fixture.rs\"\n");
    let d = contracts::check(&m, &r);
    assert!(!fired(&d, "R-BLOB-KIND"), "{d:?}");
}

#[test]
fn r5_fprint_coverage_fires_on_uncovered_and_stale_fields() {
    let ckpt = include_str!("fixtures/r5_fprint_ckpt.rs");
    let fail = include_str!("fixtures/r5_fprint_config_fail.rs");
    let m = model(&[("crates/core/src/config.rs", fail), ("crates/core/src/checkpoint.rs", ckpt)]);
    let d = contracts::check(&m, &Registries::default());
    assert!(d.iter().any(|x| x.msg.contains("`SdeaConfig.uncovered`")), "{d:?}");
    assert!(d.iter().any(|x| x.msg.contains("stale annotation")), "{d:?}");

    let pass = include_str!("fixtures/r5_fprint_config_pass.rs");
    let m = model(&[("crates/core/src/config.rs", pass), ("crates/core/src/checkpoint.rs", ckpt)]);
    let d = contracts::check(&m, &Registries::default());
    assert!(!fired(&d, "R-FPRINT-COVERAGE"), "{d:?}");
}

// ---------------------------------------------------------------------------
// Registry completeness at HEAD: every committed entry is load-bearing.

fn head_model(root: &Path) -> WorkspaceModel {
    let mut m = WorkspaceModel::default();
    for path in workspace::source_files(root).expect("walk workspace") {
        let rel = path.strip_prefix(root).expect("under root").to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(&path).expect("read source");
        m.absorb(&Analysis::new(&rel, &src));
    }
    m.set_readme(&std::fs::read_to_string(root.join("README.md")).expect("README.md"));
    m
}

fn head_registries(root: &Path) -> Registries {
    let read = |name: &str| std::fs::read_to_string(root.join(name)).expect(name);
    Registries {
        env: parse_env(&read("env_registry.toml")).expect("env registry parses"),
        env_path: "env_registry.toml".into(),
        obs: parse_obs(&read("obs_registry.toml")).expect("obs registry parses"),
        obs_path: "obs_registry.toml".into(),
        blob: parse_blob(&read("blob_registry.toml")).expect("blob registry parses"),
        blob_path: "blob_registry.toml".into(),
    }
}

#[test]
fn deleting_any_single_registry_entry_fails_the_lint() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = workspace::find_root(here).expect("workspace root above crates/lint");
    let m = head_model(&root);
    let full = head_registries(&root);
    assert!(
        contracts::check(&m, &full).is_empty(),
        "HEAD must be contract-clean before the deletion sweep: {:?}",
        contracts::check(&m, &full)
    );

    let env_vars: Vec<String> = full.env.vars.keys().cloned().collect();
    assert!(!env_vars.is_empty(), "env registry must not be empty");
    for var in env_vars {
        let mut r = clone_regs(&full);
        r.env.vars.remove(&var);
        let d = contracts::check(&m, &r);
        assert!(
            d.iter().any(|x| x.rule == "R-ENV-REGISTRY" && x.msg.contains(&var)),
            "removing env entry `{var}` did not fail the lint"
        );
    }

    for kind in [ObsKind::Span, ObsKind::Counter, ObsKind::Histogram] {
        let names: Vec<String> = full.obs.table(kind).keys().cloned().collect();
        assert!(!names.is_empty(), "{} table must not be empty", kind.label());
        for name in names {
            let mut r = clone_regs(&full);
            match kind {
                ObsKind::Span => r.obs.spans.remove(&name),
                ObsKind::Counter => r.obs.counters.remove(&name),
                ObsKind::Histogram => r.obs.histograms.remove(&name),
            };
            let d = contracts::check(&m, &r);
            assert!(
                d.iter().any(|x| x.rule == "R-OBS-NAMES" && x.msg.contains(&name)),
                "removing {} `{name}` did not fail the lint",
                kind.label()
            );
        }
    }

    let kinds: Vec<String> = full.blob.kinds.keys().cloned().collect();
    assert!(!kinds.is_empty(), "blob registry must not be empty");
    for kind in kinds {
        let mut r = clone_regs(&full);
        r.blob.kinds.remove(&kind);
        let d = contracts::check(&m, &r);
        assert!(
            d.iter().any(|x| x.rule == "R-BLOB-KIND" && x.msg.contains(&kind)),
            "removing blob kind `{kind}` did not fail the lint"
        );
    }
}

fn clone_regs(r: &Registries) -> Registries {
    Registries {
        env: r.env.clone(),
        env_path: r.env_path.clone(),
        obs: r.obs.clone(),
        obs_path: r.obs_path.clone(),
        blob: r.blob.clone(),
        blob_path: r.blob_path.clone(),
    }
}
