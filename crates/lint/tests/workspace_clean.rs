//! The linter's own acceptance gate: the real workspace at HEAD must be
//! clean against the committed baseline. If this test fails, either a
//! change introduced a violation or the baseline needs a reviewed edit.

use sdea_lint::workspace;
use std::path::Path;

#[test]
fn repository_head_is_lint_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = workspace::find_root(here).expect("workspace root above crates/lint");
    let res = workspace::run(&root, &root.join("lint_baseline.toml"), false).unwrap();
    let shown: Vec<String> = res.diags.iter().map(|d| d.to_string()).collect();
    assert!(res.diags.is_empty(), "workspace is not lint-clean:\n{}", shown.join("\n"));
    assert!(res.files_scanned > 100, "suspiciously few files scanned: {}", res.files_scanned);
}
