//! The linter's own acceptance gate: the real workspace at HEAD must be
//! clean against the committed baseline. If this test fails, either a
//! change introduced a violation or the baseline needs a reviewed edit.

use sdea_lint::workspace;
use std::path::Path;

#[test]
fn repository_head_is_lint_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = workspace::find_root(here).expect("workspace root above crates/lint");
    let res = workspace::run(&root, &root.join("lint_baseline.toml"), false).unwrap();
    let shown: Vec<String> = res.diags.iter().map(|d| d.to_string()).collect();
    assert!(res.diags.is_empty(), "workspace is not lint-clean:\n{}", shown.join("\n"));
    assert!(res.files_scanned > 100, "suspiciously few files scanned: {}", res.files_scanned);
    // The contract registries are committed at the root — a clean run with
    // them missing is impossible (every live name would be unregistered),
    // but check explicitly so a rename fails with a clear message.
    for reg in ["env_registry.toml", "obs_registry.toml", "blob_registry.toml"] {
        assert!(root.join(reg).is_file(), "{reg} missing from the workspace root");
    }
}

#[test]
fn json_report_of_a_clean_run_parses_and_says_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = workspace::find_root(here).expect("workspace root above crates/lint");
    let res = workspace::run(&root, &root.join("lint_baseline.toml"), false).unwrap();
    let report = sdea_obs::json::Json::parse(&workspace::json_report(&res)).expect("report parses");
    let field = |k: &str| report.get(k).cloned().expect(k);
    assert_eq!(field("tool"), sdea_obs::json::Json::str("sdea-lint"));
    assert_eq!(field("clean"), sdea_obs::json::Json::Bool(true));
    match field("violations") {
        sdea_obs::json::Json::Arr(v) => assert!(v.is_empty()),
        other => panic!("violations should be an array, got {other:?}"),
    }
}
