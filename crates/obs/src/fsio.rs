//! Crash-atomic file writes for the layers *below* `sdea-tensor`.
//!
//! `sdea_tensor::serialize::atomic_write*` is the canonical atomic-write
//! path (checksummed containers, fault-injection hooks, bounded retry), but
//! `sdea-obs` sits underneath `sdea-tensor` in the dependency graph and
//! still persists run reports. This module is the minimal shared helper the
//! atomicity rule (`A-RAW-WRITE` in `sdea-lint`, DESIGN.md §11) allowlists
//! alongside the tensor-layer writer: temp file, fsync, rename, then a
//! best-effort fsync of the parent directory, so a crash mid-write can
//! never leave a truncated file at the destination.

use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically via `<path>.tmp` + fsync + rename +
/// parent-directory fsync. On any error the destination is untouched (a
/// stale `.tmp` may remain; the next successful write replaces it).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the rename itself (the directory entry), best effort: some
    // filesystems reject opening a directory for sync.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sdea_obs_fsio_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = tmpdir("basic");
        let p = d.join("out.json");
        atomic_write(&p, b"one").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"one");
        atomic_write(&p, b"two").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"two");
        assert!(!d.join("out.json.tmp").exists(), "tmp file renamed away");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_parent_is_an_error_and_leaves_no_file() {
        let d = tmpdir("missing").join("nope");
        let p = d.join("out.json");
        assert!(atomic_write(&p, b"x").is_err());
        assert!(!p.exists());
    }
}
