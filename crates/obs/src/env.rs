//! Strict environment-variable parsing.
//!
//! Every `SDEA_*` knob used to fall back to its default when the value was
//! malformed (`SDEA_THREADS=banana` silently ran single-threaded). For a
//! long-lived serving process that is a production incident, not a
//! convenience — so every parse site now goes through these helpers and a
//! malformed value is a hard startup error: a clear message on stderr and
//! exit code 2. Unset variables and blank values still mean "use the
//! default".
//!
//! The `check_*` functions hold the actual policy and are pure (no process
//! exit), so tests pin the accepted/rejected value sets; the `*_or_exit`
//! wrappers are what startup paths call.

use std::str::FromStr;

/// Exit code for a malformed environment variable (distinct from the
/// CLI-usage exit code 2 convention only by message; both mean "operator
/// error, nothing ran").
pub const ENV_EXIT_CODE: i32 = 2;

/// Validates a raw value for `var`: `None` / blank ⇒ `Ok(None)` (unset),
/// otherwise the trimmed value must parse as `T`.
pub fn check_parse<T: FromStr>(
    var: &str,
    raw: Option<&str>,
    expected: &str,
) -> Result<Option<T>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    t.parse::<T>().map(Some).map_err(|_| format!("invalid {var}={raw:?}: expected {expected}"))
}

/// Validates a raw boolean flag for `var`. Accepted spellings (trimmed):
/// `1`/`true`/`on` ⇒ `true`, `0`/`false`/`off` ⇒ `false`. Anything else is
/// an error — previously any unrecognized value silently enabled the flag.
pub fn check_bool(var: &str, raw: Option<&str>) -> Result<Option<bool>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim() {
        "" => Ok(None),
        "1" | "true" | "on" => Ok(Some(true)),
        "0" | "false" | "off" => Ok(Some(false)),
        _ => Err(format!("invalid {var}={raw:?}: expected 1/true/on or 0/false/off")),
    }
}

/// Validates a raw enumerated value for `var` against `allowed` (trimmed,
/// case-sensitive). Returns the matching allowed value.
pub fn check_enum(
    var: &str,
    raw: Option<&str>,
    allowed: &[&'static str],
) -> Result<Option<&'static str>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let t = raw.trim();
    if t.is_empty() {
        return Ok(None);
    }
    match allowed.iter().find(|&&a| a == t) {
        Some(&a) => Ok(Some(a)),
        None => Err(format!("invalid {var}={raw:?}: expected one of {}", allowed.join("/"))),
    }
}

/// Prints `msg` with the standard prefix and exits with [`ENV_EXIT_CODE`].
pub fn die(msg: &str) -> ! {
    eprintln!("sdea: {msg} (fix the environment and restart)");
    std::process::exit(ENV_EXIT_CODE)
}

fn get(var: &str) -> Option<String> {
    std::env::var(var).ok()
}

/// Reads and parses `var`; `None` when unset/blank, process exit on a
/// malformed value. `expected` describes the accepted format for the error
/// message (e.g. `"a non-negative integer"`).
pub fn parse_or_exit<T: FromStr>(var: &str, expected: &str) -> Option<T> {
    match check_parse(var, get(var).as_deref(), expected) {
        Ok(v) => v,
        Err(msg) => die(&msg),
    }
}

/// Reads a strict boolean flag; `None` when unset/blank, exit on anything
/// outside the accepted spellings.
pub fn bool_or_exit(var: &str) -> Option<bool> {
    match check_bool(var, get(var).as_deref()) {
        Ok(v) => v,
        Err(msg) => die(&msg),
    }
}

/// Reads a strict enumerated value; `None` when unset/blank, exit on an
/// unrecognized value.
pub fn enum_or_exit(var: &str, allowed: &[&'static str]) -> Option<&'static str> {
    match check_enum(var, get(var).as_deref(), allowed) {
        Ok(v) => v,
        Err(msg) => die(&msg),
    }
}

/// Reads a free-form string value (paths, fault specs); `None` when unset
/// or blank, the trimmed value otherwise. The one way a string can be
/// malformed is a non-UTF-8 value, and that exits like every other
/// `SDEA_*` parse failure instead of silently falling back to the default.
pub fn string_or_exit(var: &str) -> Option<String> {
    match std::env::var(var) {
        Ok(raw) => {
            let t = raw.trim();
            if t.is_empty() {
                None
            } else {
                Some(t.to_string())
            }
        }
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            die(&format!("invalid {var}={raw:?}: expected UTF-8 text"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_blank_mean_default() {
        assert_eq!(check_parse::<usize>("X", None, "int"), Ok(None));
        assert_eq!(check_parse::<usize>("X", Some(""), "int"), Ok(None));
        assert_eq!(check_parse::<usize>("X", Some("  "), "int"), Ok(None));
        assert_eq!(check_bool("X", None), Ok(None));
        assert_eq!(check_bool("X", Some(" ")), Ok(None));
        assert_eq!(check_enum("X", None, &["a"]), Ok(None));
        assert_eq!(check_enum("X", Some(""), &["a"]), Ok(None));
    }

    #[test]
    fn valid_values_parse_trimmed() {
        assert_eq!(check_parse::<usize>("X", Some(" 8 "), "int"), Ok(Some(8)));
        assert_eq!(check_parse::<f32>("X", Some("0.5"), "float"), Ok(Some(0.5)));
        assert_eq!(check_parse::<u64>("X", Some("2022"), "int"), Ok(Some(2022)));
    }

    #[test]
    fn malformed_values_are_errors_not_defaults() {
        assert!(check_parse::<usize>("SDEA_THREADS", Some("banana"), "int").is_err());
        assert!(check_parse::<usize>("SDEA_THREADS", Some("-1"), "int").is_err());
        assert!(check_parse::<usize>("SDEA_THREADS", Some("8 workers"), "int").is_err());
        assert!(check_parse::<f32>("SDEA_ATTR_LR", Some("fast"), "float").is_err());
        let msg = check_parse::<usize>("SDEA_THREADS", Some("banana"), "a non-negative integer")
            .unwrap_err();
        assert!(msg.contains("SDEA_THREADS"), "{msg}");
        assert!(msg.contains("banana"), "{msg}");
        assert!(msg.contains("non-negative integer"), "{msg}");
    }

    #[test]
    fn bool_accepts_exactly_the_documented_spellings() {
        for v in ["1", "true", "on", " 1 "] {
            assert_eq!(check_bool("SDEA_OBS", Some(v)), Ok(Some(true)), "{v:?}");
        }
        for v in ["0", "false", "off"] {
            assert_eq!(check_bool("SDEA_OBS", Some(v)), Ok(Some(false)), "{v:?}");
        }
        // Previously e.g. "yes" or "2" silently *enabled* observability.
        for v in ["yes", "no", "2", "TRUE", "On", "enabled"] {
            assert!(check_bool("SDEA_OBS", Some(v)).is_err(), "{v:?}");
        }
    }

    #[test]
    fn enums_are_closed_sets() {
        let allowed = &["quick", "full"];
        assert_eq!(check_enum("SDEA_SCALE", Some("full"), allowed), Ok(Some("full")));
        assert_eq!(check_enum("SDEA_SCALE", Some(" quick "), allowed), Ok(Some("quick")));
        assert!(check_enum("SDEA_SCALE", Some("fulll"), allowed).is_err());
        assert!(check_enum("SDEA_SCALE", Some("FULL"), allowed).is_err());
    }
}
