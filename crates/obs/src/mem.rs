//! Memory accounting: a counting global allocator plus Linux peak-RSS.
//!
//! Past toy scale, "did it fit in RAM" is as much a result as wall time —
//! the out-of-core embedding and blocked-evaluation paths exist precisely
//! to bound the working set, and a claim like "sharded peak < 50% of the
//! materialized path" needs a measurement, not an estimate. This module
//! provides two complementary ones:
//!
//! * **Allocator counters.** [`CountingAlloc`] wraps the [`System`]
//!   allocator and keeps four relaxed atomics: bytes ever allocated,
//!   live bytes, the high-water mark of live bytes, and the allocation
//!   count. [`reset_peak`] rebases the high-water mark to the current
//!   live size, so a benchmark can measure the peak of *one phase* in
//!   isolation — something process-wide RSS can never give (RSS only
//!   grows). Counting costs a handful of relaxed atomic ops per
//!   allocation and can be switched off with `SDEA_MEM=0` (strict
//!   spelling, like `SDEA_OBS`); the switch is consulted lazily from the
//!   reporting paths, **never** inside the allocator itself — reading an
//!   environment variable allocates, and an allocator that allocates
//!   recurses.
//! * **Kernel truth.** [`vm_hwm_bytes`] samples `VmHWM` from
//!   `/proc/self/status` — the kernel's peak-resident-set figure,
//!   covering everything the counters cannot see (thread stacks, code
//!   pages, allocator slack). `None` off Linux or when the read fails.
//!
//! Like the rest of `sdea-obs`, nothing here feeds back into any
//! computation: the counters measure, they never steer. Peaks observed
//! under concurrent allocation are accurate to the interleaving of the
//! add and max operations — exact for the single-threaded phases the
//! scaling benchmark measures, and a tight lower bound elsewhere.

// lint: the GlobalAlloc impl below is the workspace's one sanctioned use
// of `unsafe` — a counting pass-through to the System allocator. The obs
// crate root carries #![deny(unsafe_code)] (see lib.rs) so everything
// outside this module still rejects unsafe at compile time.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Whether allocations are being counted. Defaults to on; `SDEA_MEM=0`
/// (applied lazily, see module docs) or [`set_counting`] turn it off.
static COUNTING: AtomicBool = AtomicBool::new(true);
/// Bytes ever handed out (never decremented).
static TOTAL: AtomicU64 = AtomicU64::new(0);
/// Number of allocations ever made (never decremented).
static COUNT: AtomicU64 = AtomicU64::new(0);
/// Live bytes right now. Signed: toggling counting mid-run can make a
/// dealloc observe bytes whose alloc was never counted.
static CURRENT: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`CURRENT`] since process start or [`reset_peak`].
static PEAK: AtomicI64 = AtomicI64::new(0);

/// The counting allocator installed as `#[global_allocator]` for every
/// binary in the workspace (all of them link `sdea-obs`).
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn on_alloc(size: usize) {
        if !COUNTING.load(Ordering::Relaxed) {
            return;
        }
        TOTAL.fetch_add(size as u64, Ordering::Relaxed);
        COUNT.fetch_add(1, Ordering::Relaxed);
        let live = CURRENT.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    #[inline]
    fn on_dealloc(size: usize) {
        if !COUNTING.load(Ordering::Relaxed) {
            return;
        }
        CURRENT.fetch_sub(size as i64, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Applies the `SDEA_MEM` kill-switch exactly once, from a reporting path
/// (never from the allocator — see module docs). Malformed values abort
/// with exit code 2, the workspace's strict-env policy.
fn apply_env() {
    static APPLIED: OnceLock<()> = OnceLock::new();
    APPLIED.get_or_init(|| {
        if let Some(on) = crate::env::bool_or_exit("SDEA_MEM") {
            COUNTING.store(on, Ordering::Relaxed);
        }
    });
}

/// Whether the allocator counters are live.
pub fn counting_enabled() -> bool {
    apply_env();
    COUNTING.load(Ordering::Relaxed)
}

/// Turns allocation counting on or off at runtime (overrides `SDEA_MEM`).
pub fn set_counting(on: bool) {
    apply_env();
    COUNTING.store(on, Ordering::Relaxed);
}

/// Live heap bytes right now, as counted by the allocator.
pub fn current_bytes() -> u64 {
    CURRENT.load(Ordering::Relaxed).max(0) as u64
}

/// High-water mark of live heap bytes since process start or the last
/// [`reset_peak`].
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed).max(0) as u64
}

/// Total bytes ever allocated (monotonic; deallocation never lowers it).
pub fn total_allocated_bytes() -> u64 {
    TOTAL.load(Ordering::Relaxed)
}

/// Number of heap allocations ever made (monotonic).
pub fn allocation_count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// Rebases the peak to the current live size, so the next [`peak_bytes`]
/// reading reflects only allocations made after this call — the primitive
/// behind per-phase peak measurement in `bench_scale`.
pub fn reset_peak() {
    apply_env();
    PEAK.store(CURRENT.load(Ordering::Relaxed).max(0), Ordering::Relaxed);
}

/// One coherent snapshot of every memory figure this module tracks.
#[derive(Clone, Copy, Debug)]
pub struct MemStats {
    /// Whether the allocator counters were live when sampled.
    pub counting: bool,
    /// Bytes ever allocated.
    pub total_allocated_bytes: u64,
    /// Live heap bytes.
    pub current_bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
    /// Number of allocations ever made.
    pub allocations: u64,
    /// Kernel peak RSS (`VmHWM`), when available.
    pub vm_hwm_bytes: Option<u64>,
}

/// Samples all counters plus the kernel's `VmHWM`.
pub fn stats() -> MemStats {
    MemStats {
        counting: counting_enabled(),
        total_allocated_bytes: total_allocated_bytes(),
        current_bytes: current_bytes(),
        peak_bytes: peak_bytes(),
        allocations: allocation_count(),
        vm_hwm_bytes: vm_hwm_bytes(),
    }
}

/// The process's peak resident set size in bytes, from the `VmHWM` line of
/// `/proc/self/status`. `None` when the file or the line is unavailable
/// (non-Linux platforms) — callers report it as absent, never fail.
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parses `VmHWM:   123456 kB` out of a `/proc/<pid>/status` document.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.strip_prefix("VmHWM:")?.trim().strip_suffix("kB")?.trim().parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The counters and the counting flag are process globals; tests that
    /// toggle or assert on them must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_observe_a_large_allocation() {
        let _g = lock();
        set_counting(true);
        let before_total = total_allocated_bytes();
        let before_count = allocation_count();
        const N: usize = 1 << 20;
        let v = std::hint::black_box(vec![7u8; N]);
        assert!(
            total_allocated_bytes() >= before_total + N as u64,
            "1 MiB allocation missing from the total counter"
        );
        assert!(allocation_count() > before_count);
        assert!(current_bytes() >= N as u64);
        assert!(peak_bytes() >= current_bytes());
        drop(v);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let _g = lock();
        set_counting(true);
        {
            let _big = std::hint::black_box(vec![1u8; 1 << 21]);
        }
        let spike = peak_bytes();
        assert!(spike >= 1 << 21, "the 2 MiB spike must register in the peak");
        reset_peak();
        assert!(peak_bytes() < spike, "reset must shed the dropped spike");
        let small = std::hint::black_box(vec![2u8; 1 << 10]);
        assert!(peak_bytes() >= current_bytes().min(1 << 10));
        drop(small);
    }

    #[test]
    fn disabled_counting_freezes_the_counters() {
        let _g = lock();
        set_counting(false);
        let before = total_allocated_bytes();
        let v = std::hint::black_box(vec![3u8; 1 << 16]);
        assert_eq!(total_allocated_bytes(), before, "64 KiB counted while disabled");
        drop(v);
        set_counting(true);
    }

    #[test]
    fn parse_vm_hwm_reads_the_kb_line() {
        let status = "Name:\tsdea\nVmPeak:\t  999 kB\nVmHWM:\t   2048 kB\nThreads:\t8\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tsdea\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn vm_hwm_is_available_on_linux() {
        let hwm = vm_hwm_bytes().expect("VmHWM readable on Linux");
        assert!(hwm > 0);
    }

    #[test]
    fn stats_snapshot_is_coherent() {
        set_counting(true);
        let s = stats();
        assert!(s.total_allocated_bytes > 0);
        assert!(s.peak_bytes >= 1);
    }
}
