//! Structured run reports.
//!
//! A [`RunReport`] gathers everything one benchmark/training run produced —
//! configuration, seed, thread budget, final metrics, per-epoch curves —
//! and merges in the registry's counters, histograms and span timings at
//! serialization time. The result is one JSON document per run
//! (`results/run_report_<run>.json`), the machine-readable trajectory that
//! later performance PRs measure themselves against.
//!
//! Wall-clock values appear **only** in the report; nothing here is read
//! back by any computation, preserving the system's determinism guarantee.

use crate::json::Json;
use crate::registry::{snapshot, ObsSnapshot};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema version of the emitted JSON; bump on breaking layout changes.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// A structured record of one run, serializable as JSON.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    run: String,
    seed: u64,
    threads: usize,
    config: Vec<(String, String)>,
    metrics: Vec<(String, f64)>,
    curves: Vec<(String, Vec<f64>)>,
}

impl RunReport {
    /// Starts a report for the run `run` (e.g. `"table3_dbp15k/zh_en"`),
    /// recording the master seed and the resolved worker-thread budget.
    pub fn new(run: impl Into<String>, seed: u64, threads: usize) -> Self {
        RunReport { run: run.into(), seed, threads, ..Default::default() }
    }

    /// Records one configuration key/value pair.
    pub fn config_kv(&mut self, key: &str, value: impl std::fmt::Display) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Records one scalar result metric.
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.push((key.to_string(), value));
    }

    /// Records a per-epoch curve (losses, validation Hits@1, ...).
    pub fn curve(&mut self, key: &str, values: impl IntoIterator<Item = f64>) {
        self.curves.push((key.to_string(), values.into_iter().collect()));
    }

    /// Serializes the report, merging in the current registry snapshot
    /// (per-stage span wall times, counter totals, histograms).
    pub fn to_json(&self) -> String {
        self.render(&snapshot()).encode()
    }

    /// Writes `run_report_<sanitized-run>.json` into `dir` (created if
    /// missing) and returns the path. The write is atomic (tmp + fsync +
    /// rename via [`crate::fsio`]) so a crash mid-report can never leave a
    /// truncated JSON document behind.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("run_report_{}.json", sanitize(&self.run)));
        crate::fsio::atomic_write(&path, self.to_json().as_bytes())?;
        Ok(path)
    }

    fn render(&self, snap: &ObsSnapshot) -> Json {
        let created =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs() as f64).unwrap_or(0.0);
        let kv = |pairs: &[(String, String)]| {
            Json::Obj(pairs.iter().map(|(k, v)| (k.clone(), Json::str(v.clone()))).collect())
        };
        let spans = Json::Obj(
            snap.spans
                .iter()
                .map(|(path, s)| {
                    (
                        path.clone(),
                        Json::obj(vec![
                            ("count", Json::Num(s.count as f64)),
                            ("total_secs", Json::Num(s.total_secs)),
                            ("min_secs", Json::Num(s.min_secs)),
                            ("max_secs", Json::Num(s.max_secs)),
                        ]),
                    )
                })
                .collect(),
        );
        let counters = Json::Obj(
            snap.counters.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect(),
        );
        let histograms = Json::Obj(
            snap.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("count", Json::Num(h.count as f64)),
                            ("sum", Json::Num(h.sum)),
                            ("min", Json::Num(h.min)),
                            ("max", Json::Num(h.max)),
                            ("mean", Json::Num(h.mean())),
                            (
                                "log2_buckets",
                                Json::Arr(h.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema_version", Json::Num(REPORT_SCHEMA_VERSION as f64)),
            ("run", Json::str(self.run.clone())),
            ("created_unix_secs", Json::Num(created)),
            ("seed", Json::Num(self.seed as f64)),
            ("threads", Json::Num(self.threads as f64)),
            ("obs_enabled", Json::Bool(crate::enabled())),
            ("config", kv(&self.config)),
            (
                "metrics",
                Json::Obj(self.metrics.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
            ),
            (
                "curves",
                Json::Obj(
                    self.curves
                        .iter()
                        .map(|(k, vs)| {
                            (k.clone(), Json::Arr(vs.iter().map(|&v| Json::Num(v)).collect()))
                        })
                        .collect(),
                ),
            ),
            ("memory", memory_json()),
            ("spans", spans),
            ("counters", counters),
            ("histograms", histograms),
        ])
    }
}

/// The memory section of a report: allocator counters (see [`crate::mem`])
/// plus the kernel's `VmHWM` peak RSS (`null` where unavailable).
fn memory_json() -> Json {
    let m = crate::mem::stats();
    Json::obj(vec![
        ("counting_enabled", Json::Bool(m.counting)),
        ("total_allocated_bytes", Json::Num(m.total_allocated_bytes as f64)),
        ("current_bytes", Json::Num(m.current_bytes as f64)),
        ("peak_bytes", Json::Num(m.peak_bytes as f64)),
        ("allocations", Json::Num(m.allocations as f64)),
        ("vm_hwm_bytes", m.vm_hwm_bytes.map(|b| Json::Num(b as f64)).unwrap_or(Json::Null)),
    ])
}

/// Keeps `[A-Za-z0-9._-]`, maps everything else (path separators included)
/// to `_` so the run name is safe as a file-name fragment.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_contains_all_sections() {
        let mut r = RunReport::new("unit/test run", 7, 4);
        r.config_kv("embed_dim", 128);
        r.metric("hits1", 0.5);
        r.curve("loss", [1.0, 0.5, 0.25]);
        let j = r.to_json();
        for key in [
            "\"run\":",
            "\"seed\":7",
            "\"threads\":4",
            "\"embed_dim\":\"128\"",
            "\"hits1\":0.5",
            "\"curves\":",
            "\"loss\":[1,0.5,0.25]",
            "\"spans\":",
            "\"counters\":",
            "\"memory\":",
            "\"peak_bytes\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn write_creates_sanitized_file() {
        let dir = std::env::temp_dir().join(format!("sdea_obs_report_{}", std::process::id()));
        let r = RunReport::new("tableX/zh en", 1, 1);
        let path = r.write_to_dir(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "run_report_tableX_zh_en.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with('{') && body.ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_keeps_safe_chars() {
        assert_eq!(sanitize("a/b c.D-1_2"), "a_b_c.D-1_2");
    }
}
