//! # sdea-obs
//!
//! Lightweight, zero-dependency observability for the SDEA system: scoped
//! span timers, monotonic counters, value histograms, and structured JSON
//! run reports. Every crate above `sdea-tensor` instruments its hot paths
//! through this layer so benchmark runs produce machine-readable
//! `run_report_*.json` artifacts (per-stage wall time, per-epoch training
//! curves, counter totals).
//!
//! ## Design constraints
//!
//! * **Deterministic-safe.** Nothing recorded here ever feeds back into a
//!   computation: timers measure, they never steer. Instrumented code
//!   produces bit-identical tensors whether observability is on or off
//!   (enforced by the budget-equivalence test suites, which CI runs with
//!   `SDEA_OBS=1`).
//! * **Near-zero cost when disabled.** `SDEA_OBS=0` (or
//!   [`set_enabled`]`(false)`, wired to `SdeaConfig::obs`) reduces every
//!   instrumentation point to one relaxed atomic load.
//! * **No dependencies.** JSON is written by a ~100-line encoder in
//!   [`json`]; the registry is `std` synchronization only, so the crate
//!   builds air-gapped like the rest of the workspace.
//! * **Memory is a metric.** [`mem`] installs a counting global allocator
//!   (bytes allocated / live / peak, `SDEA_MEM=0` to switch off) and
//!   samples the kernel's `VmHWM` peak RSS; both land in every
//!   [`RunReport`].
//!
//! ## Usage
//!
//! ```
//! let _outer = sdea_obs::span("fit");
//! {
//!     let _inner = sdea_obs::span("epoch"); // recorded as "fit.epoch"
//!     sdea_obs::add("steps", 1);
//!     sdea_obs::record("loss", 0.25);
//! }
//! let snap = sdea_obs::snapshot();
//! assert!(snap.counters.get("steps").copied().unwrap_or(0) >= 1);
//! ```

// `deny`, not the workspace-standard `forbid`: the counting global
// allocator in [`mem`] is necessarily an `unsafe impl GlobalAlloc`, and
// `forbid` cannot be overridden locally. The single sanctioned opt-out
// lives at the top of `mem.rs`; sdea-lint's U-FORBID-UNSAFE rule accepts
// `deny` for exactly this crate root and no other.
#![deny(unsafe_code)]

pub mod env;
pub mod fsio;
pub mod json;
pub mod mem;
pub mod registry;
pub mod report;

pub use mem::MemStats;
pub use registry::{
    add, clear_enabled_override, counter, enabled, record, reset, set_enabled, snapshot, Counter,
    HistogramStats, ObsSnapshot, Span, SpanStats,
};
pub use report::RunReport;

/// Starts a scoped span timer. The returned guard records the elapsed wall
/// time under the dotted path of all spans active on this thread when it
/// drops (`span("fit")` then `span("epoch")` records `"fit.epoch"`).
/// A no-op when observability is disabled.
pub fn span(name: &str) -> Span {
    registry::span(name)
}

/// `span!("name")` — macro alias of [`span`] for call sites that prefer the
/// macro style.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
