//! Process-wide registry of counters, histograms and span timings.
//!
//! All mutation funnels through one `Mutex` (instrumentation points are
//! coarse — epochs, stages, kernel entry — never per-element), except
//! [`Counter`] handles which pre-register an `Arc<AtomicU64>` so hot paths
//! pay one atomic add and no lock. When observability is disabled every
//! entry point returns after a single relaxed atomic load.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log2 buckets kept per histogram (see [`HistogramStats`]).
pub const HIST_BUCKETS: usize = 16;

/// Summary of every value recorded under one histogram name.
///
/// `buckets[i]` counts values `v` with `2^(i-8) <= v < 2^(i-7)` (bucket 0
/// additionally absorbs everything below `2^-8`, including non-positive
/// values; the last bucket absorbs everything from `2^7` up).
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramStats {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Log2 buckets (see type docs).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramStats {
    fn default() -> Self {
        HistogramStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramStats {
    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = if v.is_finite() && v > 0.0 {
            (v.log2().floor() as i64 + 8).clamp(0, HIST_BUCKETS as i64 - 1) as usize
        } else {
            0
        };
        self.buckets[idx] += 1;
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregate timing of every completed span sharing one dotted path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time in seconds.
    pub total_secs: f64,
    /// Shortest single span in seconds.
    pub min_secs: f64,
    /// Longest single span in seconds.
    pub max_secs: f64,
}

impl SpanStats {
    fn observe(&mut self, secs: f64) {
        if self.count == 0 {
            self.min_secs = secs;
            self.max_secs = secs;
        } else {
            self.min_secs = self.min_secs.min(secs);
            self.max_secs = self.max_secs.max(secs);
        }
        self.count += 1;
        self.total_secs += secs;
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, HistogramStats>,
    spans: BTreeMap<String, SpanStats>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

// --- enablement -----------------------------------------------------------

/// 0 = no override (defer to `SDEA_OBS`), 1 = forced on, 2 = forced off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    // Strict: only the documented spellings are accepted. A typo like
    // `SDEA_OBS=of` used to silently *enable* observability; now it is a
    // hard startup error (crate::env exits with a clear message).
    *ENV.get_or_init(|| crate::env::bool_or_exit("SDEA_OBS").unwrap_or(true))
}

/// Whether instrumentation records anything. Resolution order: programmatic
/// override ([`set_enabled`]) → the `SDEA_OBS` environment variable
/// (`0`/`false`/`off` disable, `1`/`true`/`on` enable, anything else is a
/// hard error) → enabled.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Forces observability on or off, overriding `SDEA_OBS`.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Clears the [`set_enabled`] override, restoring `SDEA_OBS` resolution.
pub fn clear_enabled_override() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

// --- counters -------------------------------------------------------------

/// A pre-registered counter handle: increments are one atomic add, no lock.
/// Obtain via [`counter`]; cache in a `OnceLock` at hot call sites.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` (no-op while observability is disabled).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Registers (or fetches) the counter `name` and returns a handle to it.
/// Handles stay connected to the registry across [`reset`] (reset zeroes
/// counters instead of dropping them).
pub fn counter(name: &str) -> Counter {
    let mut reg = lock();
    let cell = reg.counters.entry(name.to_string()).or_default().clone();
    Counter { cell }
}

/// Adds `n` to the counter `name` (registering it on first use). Takes the
/// registry lock — fine for per-epoch / per-stage sites; hot loops should
/// cache a [`counter`] handle instead.
pub fn add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut reg = lock();
    reg.counters.entry(name.to_string()).or_default().fetch_add(n, Ordering::Relaxed);
}

// --- histograms -----------------------------------------------------------

/// Records `value` into the histogram `name`.
pub fn record(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = lock();
    reg.histograms.entry(name.to_string()).or_default().observe(value);
}

// --- spans ----------------------------------------------------------------

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard of one scoped span; see [`crate::span`].
pub struct Span {
    start: Option<Instant>,
}

pub(crate) fn span(name: &str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name.to_string()));
    Span { start: Some(Instant::now()) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let secs = start.elapsed().as_secs_f64();
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join(".");
            stack.pop();
            path
        });
        lock().spans.entry(path).or_default().observe(secs);
    }
}

// --- snapshot / reset -----------------------------------------------------

/// A point-in-time copy of the registry.
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramStats>,
    /// Span timings by dotted path.
    pub spans: BTreeMap<String, SpanStats>,
}

/// Copies the current registry contents. Zero-valued counters (e.g. freshly
/// [`reset`] ones) are skipped so reports only show what actually happened.
pub fn snapshot() -> ObsSnapshot {
    let reg = lock();
    ObsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .filter(|&(_, v)| v > 0)
            .collect(),
        histograms: reg.histograms.clone(),
        spans: reg.spans.clone(),
    }
}

/// Clears histograms and spans and zeroes every counter (counters are kept
/// registered so cached [`Counter`] handles stay live). Call between
/// benchmark runs so each run report reflects only its own run.
pub fn reset() {
    let mut reg = lock();
    for c in reg.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    reg.histograms.clear();
    reg.spans.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry state is process-global; tests serialize on this lock and
    /// force-enable observability so `cargo test` parallelism and the
    /// ambient `SDEA_OBS` value never flake them.
    fn with_clean_registry<R>(f: impl FnOnce() -> R) -> R {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        let out = f();
        clear_enabled_override();
        out
    }

    #[test]
    fn counters_accumulate_and_reset() {
        with_clean_registry(|| {
            add("t.a", 2);
            add("t.a", 3);
            let h = counter("t.b");
            h.add(7);
            let snap = snapshot();
            assert_eq!(snap.counters["t.a"], 5);
            assert_eq!(snap.counters["t.b"], 7);
            reset();
            // handle survives reset and keeps counting from zero
            h.add(1);
            assert_eq!(snapshot().counters["t.b"], 1);
            assert!(!snapshot().counters.contains_key("t.a"));
        });
    }

    #[test]
    fn spans_nest_into_dotted_paths() {
        with_clean_registry(|| {
            {
                let _outer = crate::span("outer");
                let _inner = crate::span("inner");
            }
            let snap = snapshot();
            assert_eq!(snap.spans["outer"].count, 1);
            assert_eq!(snap.spans["outer.inner"].count, 1);
            assert!(snap.spans["outer"].total_secs >= snap.spans["outer.inner"].total_secs);
        });
    }

    #[test]
    fn histogram_summary_is_exact() {
        with_clean_registry(|| {
            for v in [1.0, 2.0, 3.0] {
                record("t.h", v);
            }
            record("t.h", -1.0); // non-positive lands in bucket 0
            let h = &snapshot().histograms["t.h"];
            assert_eq!(h.count, 4);
            assert_eq!(h.sum, 5.0);
            assert_eq!(h.min, -1.0);
            assert_eq!(h.max, 3.0);
            assert_eq!(h.mean(), 1.25);
            assert_eq!(h.buckets.iter().sum::<u64>(), 4);
            assert!(h.buckets[0] >= 1);
        });
    }

    #[test]
    fn disabled_records_nothing() {
        with_clean_registry(|| {
            set_enabled(false);
            add("t.off", 1);
            record("t.off.h", 1.0);
            let h = counter("t.off.c");
            h.add(5);
            {
                let _s = crate::span("t.off.span");
            }
            set_enabled(true);
            let snap = snapshot();
            assert!(!snap.counters.contains_key("t.off"));
            assert!(!snap.counters.contains_key("t.off.c"));
            assert!(!snap.histograms.contains_key("t.off.h"));
            assert!(!snap.spans.contains_key("t.off.span"));
        });
    }

    #[test]
    fn counters_are_thread_safe() {
        with_clean_registry(|| {
            let h = counter("t.mt");
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let h = h.clone();
                    s.spawn(move || {
                        for _ in 0..1000 {
                            h.add(1);
                        }
                    });
                }
            });
            assert_eq!(snapshot().counters["t.mt"], 4000);
        });
    }
}
