//! A minimal JSON encoder — the workspace builds air-gapped, so no serde.
//!
//! Only what run reports need: objects with ordered keys, arrays, strings,
//! numbers, booleans and null. Non-finite numbers encode as `null` (JSON
//! has no NaN/Infinity), which is the behavior consumers of
//! `run_report_*.json` should expect for e.g. a `stable_hits1` that was
//! never computed.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values encode as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes the tree as a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 round-trips (shortest representation).
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_scalars() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(Json::Num(1.5).encode(), "1.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        assert_eq!(Json::str("hi").encode(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").encode(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").encode(), "\"\\u0001\"");
        assert_eq!(Json::str("héllo").encode(), "\"héllo\"");
    }

    #[test]
    fn encodes_nested_structures() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("b", Json::obj(vec![("c", Json::Bool(false))])),
        ]);
        assert_eq!(v.encode(), r#"{"a":[1,2],"b":{"c":false}}"#);
    }

    #[test]
    fn numbers_round_trip_compactly() {
        assert_eq!(Json::Num(0.1).encode(), "0.1");
        assert_eq!(Json::Num(2022.0).encode(), "2022");
        assert_eq!(Json::Num(-3.25).encode(), "-3.25");
    }
}
