//! A minimal JSON encoder and parser — the workspace builds air-gapped, so
//! no serde.
//!
//! Only what run reports and the serving wire format need: objects with
//! ordered keys, arrays, strings, numbers, booleans and null. Non-finite
//! numbers encode as `null` (JSON has no NaN/Infinity), which is the
//! behavior consumers of `run_report_*.json` should expect for e.g. a
//! `stable_hits1` that was never computed. The parser ([`Json::parse`])
//! accepts standard JSON text and is used by `sdea-serve` to decode
//! request bodies.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values encode as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Encodes the tree as a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses JSON text into a tree. Strict on structure (rejects trailing
    /// garbage, unterminated strings, bare words), lenient on whitespace.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 round-trips (shortest representation).
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number {text:?}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by any SDEA
                            // producer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so the
                    // byte boundaries are valid by construction)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_scalars() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(Json::Num(1.5).encode(), "1.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        assert_eq!(Json::str("hi").encode(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").encode(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").encode(), "\"\\u0001\"");
        assert_eq!(Json::str("héllo").encode(), "\"héllo\"");
    }

    #[test]
    fn encodes_nested_structures() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("b", Json::obj(vec![("c", Json::Bool(false))])),
        ]);
        assert_eq!(v.encode(), r#"{"a":[1,2],"b":{"c":false}}"#);
    }

    #[test]
    fn numbers_round_trip_compactly() {
        assert_eq!(Json::Num(0.1).encode(), "0.1");
        assert_eq!(Json::Num(2022.0).encode(), "2022");
        assert_eq!(Json::Num(-3.25).encode(), "-3.25");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("false"), Ok(Json::Bool(false)));
        assert_eq!(Json::parse("1.5"), Ok(Json::Num(1.5)));
        assert_eq!(Json::parse("-3e2"), Ok(Json::Num(-300.0)));
        assert_eq!(Json::parse("\"hi\""), Ok(Json::str("hi")));
    }

    #[test]
    fn parse_nested() {
        let v = Json::parse(r#"{"queries":["a","b"],"k":5,"deep":{"x":[1,2,3]}}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_f64), Some(5.0));
        let q = v.get("queries").and_then(Json::as_array).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].as_str(), Some("a"));
        assert_eq!(
            v.get("deep").and_then(|d| d.get("x")).and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(Json::parse("{}"), Ok(Json::Obj(vec![])));
        assert_eq!(Json::parse("[]"), Ok(Json::Arr(vec![])));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(Json::parse(r#""a\"b\\c\nd""#), Ok(Json::str("a\"b\\c\nd")));
        assert_eq!(Json::parse(r#""A""#), Ok(Json::str("A")));
        assert_eq!(Json::parse("\"héllo\""), Ok(Json::str("héllo")));
    }

    #[test]
    fn parse_round_trips_encode() {
        let v = Json::obj(vec![
            ("s", Json::str("line\nbreak \"q\"")),
            ("n", Json::Num(-0.125)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(7.0)])),
            ("o", Json::obj(vec![("k", Json::str("v"))])),
        ]);
        assert_eq!(Json::parse(&v.encode()), Ok(v));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in
            ["", "{", "[1,", "\"open", "{\"a\":}", "tru", "1 2", "{'a':1}", "[1,2] extra", "nan"]
        {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
