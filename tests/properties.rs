//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary inputs, spanning generator, tokenizer, metrics and
//! matching.

use proptest::prelude::*;
use sdea::core::align::stable_matching;
use sdea::eval::{evaluate_ranking, rank_of};
use sdea::prelude::{DatasetProfile, Tensor};
use sdea::tensor::Rng as SdeaRng;
use sdea::text::{Tokenizer, WordPieceTrainer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any generated dataset has bijective seeds referencing valid entities.
    #[test]
    fn generated_seeds_are_bijective(links in 30usize..90, seed in 0u64..500) {
        let ds = sdea::synth::generate(&DatasetProfile::dbp15k_zh_en(links, seed));
        let lefts: std::collections::HashSet<_> = ds.seeds.pairs.iter().map(|p| p.0).collect();
        let rights: std::collections::HashSet<_> = ds.seeds.pairs.iter().map(|p| p.1).collect();
        prop_assert_eq!(lefts.len(), ds.seeds.len());
        prop_assert_eq!(rights.len(), ds.seeds.len());
        for &(a, b) in &ds.seeds.pairs {
            prop_assert!((a.0 as usize) < ds.kg1().num_entities());
            prop_assert!((b.0 as usize) < ds.kg2().num_entities());
        }
    }

    /// Entity IRIs within a generated KG are unique (the builder would
    /// silently merge duplicates otherwise).
    #[test]
    fn generated_entity_names_unique(links in 30usize..80, seed in 0u64..200) {
        let ds = sdea::synth::generate(&DatasetProfile::srprs_en_de(links, seed));
        for kg in [ds.kg1(), ds.kg2()] {
            let names: std::collections::HashSet<&str> =
                kg.entities().map(|e| kg.entity_name(e)).collect();
            prop_assert_eq!(names.len(), kg.num_entities());
        }
    }

    /// Tokenization of arbitrary text never panics and respects max_len.
    #[test]
    fn tokenizer_total_on_arbitrary_text(text in ".{0,200}", max_len in 1usize..64) {
        let vocab = WordPieceTrainer::new(300)
            .train(["hello world born 1985 club city"].into_iter());
        let tok = Tokenizer::new(vocab);
        let enc = tok.encode(&text, max_len);
        prop_assert_eq!(enc.ids.len(), max_len);
        prop_assert_eq!(enc.mask.len(), max_len);
        prop_assert!(enc.real_len() >= 1);
    }

    /// rank_of is consistent: the top-scored index has rank 1; ranks are a
    /// permutation of 1..=n when scores are distinct.
    #[test]
    fn rank_of_is_a_permutation(scores in prop::collection::vec(-100i32..100, 2..30)) {
        // make distinct
        let scores: Vec<f32> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| s as f32 + i as f32 * 1e-3)
            .collect();
        let mut ranks: Vec<usize> = (0..scores.len()).map(|i| rank_of(&scores, i)).collect();
        ranks.sort_unstable();
        let expected: Vec<usize> = (1..=scores.len()).collect();
        prop_assert_eq!(ranks, expected);
    }

    /// Metrics identities: H@1 <= H@10, H@1 <= MRR <= 1, and a permuted
    /// identity matrix gives perfect scores.
    #[test]
    fn metric_identities(n in 2usize..20, seed in 0u64..1000) {
        let mut rng = SdeaRng::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let mut data = vec![0.0f32; n * n];
        for (i, &p) in perm.iter().enumerate() {
            data[i * n + p] = 1.0;
        }
        let sim = Tensor::from_vec(data, &[n, n]);
        let perfect = evaluate_ranking(&sim, &perm);
        prop_assert_eq!(perfect.hits1, 1.0);
        prop_assert_eq!(perfect.mrr, 1.0);
        // random gold on random scores keeps invariants
        let rand = Tensor::rand_normal(&[n, n], 1.0, &mut rng);
        let gold: Vec<usize> = (0..n).map(|_| rng.below(n)).collect();
        let m = evaluate_ranking(&rand, &gold);
        prop_assert!(m.hits1 <= m.hits10);
        prop_assert!(m.hits1 <= m.mrr + 1e-12);
        prop_assert!(m.mrr <= 1.0);
    }

    /// Stable matching never produces a blocking pair and assigns columns
    /// at most once.
    #[test]
    fn stable_matching_is_stable(n in 2usize..12, m in 2usize..12, seed in 0u64..1000) {
        let mut rng = SdeaRng::seed_from_u64(seed);
        let sim = Tensor::rand_normal(&[n, m], 1.0, &mut rng);
        let matched = stable_matching(&sim);
        // injectivity
        let assigned: Vec<usize> = matched.iter().flatten().copied().collect();
        let set: std::collections::HashSet<_> = assigned.iter().collect();
        prop_assert_eq!(set.len(), assigned.len());
        // no blocking pair
        for r in 0..n {
            let Some(rc) = matched[r] else { continue };
            for c in 0..m {
                if c == rc {
                    continue;
                }
                let r_prefers = sim.at2(r, c) > sim.at2(r, rc);
                let holder = matched.iter().position(|&x| x == Some(c));
                let c_prefers = match holder {
                    Some(h) => sim.at2(r, c) > sim.at2(h, c),
                    None => true,
                };
                prop_assert!(!(r_prefers && c_prefers), "blocking pair ({}, {})", r, c);
            }
        }
    }

    /// The degree-bucket statistics are monotone: P(1..3) <= P(1..5) <= P(1..10).
    #[test]
    fn degree_buckets_monotone(links in 30usize..80, seed in 0u64..200) {
        let ds = sdea::synth::generate(&DatasetProfile::srprs_dbp_yg(links, seed));
        let d = sdea::kg::DegreeBuckets::of_pair(ds.kg1(), ds.kg2());
        prop_assert!(d.upto3 <= d.upto5 + 1e-12);
        prop_assert!(d.upto5 <= d.upto10 + 1e-12);
        prop_assert!(d.upto10 <= 1.0 + 1e-12);
    }
}
