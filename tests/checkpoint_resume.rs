//! Kill-and-resume integration test: a training process killed mid-write by
//! an injected fault (`SDEA_FAULT=stage.rel.write:2:kill`, simulating a
//! crash / OOM-kill during the relation stage) must, when rerun against the
//! same checkpoint directory, finish and produce a model **byte-identical**
//! to an uninterrupted run — at thread budgets 1 and 8, and identically
//! across the two budgets.
//!
//! This drives the real `sdea` binary as separate processes: a `kill`-mode
//! fault exits mid-operation and cannot be observed in-process.

use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_sdea");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdea_killres_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn align_cmd(data: &Path, out: &Path, ckpt: Option<&Path>, threads: &str) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.arg("align")
        .arg(data)
        .args(["--tiny", "--seed", "7", "--out"])
        .arg(out)
        .env("SDEA_THREADS", threads)
        .env_remove("SDEA_FAULT");
    if let Some(dir) = ckpt {
        cmd.arg("--checkpoint").arg(dir);
    }
    cmd
}

#[test]
fn killed_run_resumes_bit_identically_across_thread_budgets() {
    let root = scratch("main");
    let data = root.join("data");
    let status = Command::new(BIN)
        .arg("generate")
        .args(["fr_en"])
        .arg(&data)
        .args(["--links", "40", "--seed", "5"])
        .status()
        .expect("spawn generate");
    assert!(status.success(), "dataset generation failed");

    let mut models: Vec<Vec<u8>> = Vec::new();
    for threads in ["1", "8"] {
        let clean_out = root.join(format!("clean_{threads}.sdt"));
        let status = align_cmd(&data, &clean_out, None, threads).status().expect("spawn align");
        assert!(status.success(), "clean run failed (threads={threads})");
        let clean = std::fs::read(&clean_out).unwrap();

        // Crash the second relation-stage checkpoint write: the attribute
        // stage is complete, the relation stage is mid-flight.
        let ckpt = root.join(format!("ckpt_{threads}"));
        let killed_out = root.join(format!("killed_{threads}.sdt"));
        let status = align_cmd(&data, &killed_out, Some(&ckpt), threads)
            .env("SDEA_FAULT", "stage.rel.write:2:kill")
            .status()
            .expect("spawn faulted align");
        assert_eq!(status.code(), Some(137), "fault must kill the process");
        assert!(!killed_out.exists(), "killed run must not have produced a model");
        assert!(ckpt.join("manifest.sdm").exists(), "crash left no manifest");

        // Rerun against the same directory: resumes and finishes.
        let resumed_out = root.join(format!("resumed_{threads}.sdt"));
        let status =
            align_cmd(&data, &resumed_out, Some(&ckpt), threads).status().expect("spawn resume");
        assert!(status.success(), "resumed run failed (threads={threads})");
        let resumed = std::fs::read(&resumed_out).unwrap();
        assert_eq!(
            resumed, clean,
            "resumed model differs from uninterrupted run (threads={threads})"
        );
        models.push(clean);
    }
    assert_eq!(models[0], models[1], "results differ across thread budgets");
    let _ = std::fs::remove_dir_all(&root);
}

/// An injected *write error* (not a kill) exercises the bounded-retry path:
/// one transient failure is absorbed and the run still succeeds, producing
/// the same model as a fault-free run.
#[test]
fn transient_write_error_is_retried_and_harmless() {
    let root = scratch("retry");
    let data = root.join("data");
    let status = Command::new(BIN)
        .arg("generate")
        .args(["fr_en"])
        .arg(&data)
        .args(["--links", "30", "--seed", "6"])
        .status()
        .expect("spawn generate");
    assert!(status.success());

    let clean_out = root.join("clean.sdt");
    assert!(align_cmd(&data, &clean_out, None, "2").status().unwrap().success());

    let faulted_out = root.join("faulted.sdt");
    let ckpt = root.join("ckpt");
    let status = align_cmd(&data, &faulted_out, Some(&ckpt), "2")
        .env("SDEA_FAULT", "stage.rel.write:1:error")
        .status()
        .expect("spawn faulted align");
    assert!(status.success(), "a retried transient error must not fail the run");
    assert_eq!(std::fs::read(&faulted_out).unwrap(), std::fs::read(&clean_out).unwrap());
    let _ = std::fs::remove_dir_all(&root);
}

/// A corrupt-mode fault flips one byte of a checkpoint payload on disk; the
/// next run must reject the damaged file with a clean fallback (quarantine),
/// never a panic or silently wrong weights.
#[test]
fn corrupted_checkpoint_write_is_quarantined_on_resume() {
    let root = scratch("corrupt");
    let data = root.join("data");
    let status = Command::new(BIN)
        .arg("generate")
        .args(["fr_en"])
        .arg(&data)
        .args(["--links", "30", "--seed", "6"])
        .status()
        .expect("spawn generate");
    assert!(status.success());

    let clean_out = root.join("clean.sdt");
    assert!(align_cmd(&data, &clean_out, None, "2").status().unwrap().success());

    // Corrupt the attribute-stage boundary artifact (written exactly once
    // per run, and never pruned — unlike mid-stage epoch checkpoints).
    // The writing run completes normally with a bad file on disk.
    let ckpt = root.join("ckpt");
    let first_out = root.join("first.sdt");
    let status = align_cmd(&data, &first_out, Some(&ckpt), "2")
        .env("SDEA_FAULT", "artifact.write:1:corrupt")
        .status()
        .expect("spawn corrupting align");
    assert!(status.success(), "corrupt-mode fault must not fail the writing run");
    assert_eq!(std::fs::read(&first_out).unwrap(), std::fs::read(&clean_out).unwrap());

    // A rerun loads the directory, detects the damage, quarantines the
    // file, redoes the attribute stage from scratch, and still reproduces
    // the clean model exactly.
    let second_out = root.join("second.sdt");
    let status = align_cmd(&data, &second_out, Some(&ckpt), "2").status().expect("spawn resume");
    assert!(status.success(), "resume after corruption failed");
    assert_eq!(std::fs::read(&second_out).unwrap(), std::fs::read(&clean_out).unwrap());
    let corrupt_quarantined = std::fs::read_dir(&ckpt)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().ends_with(".corrupt"));
    assert!(corrupt_quarantined, "damaged checkpoint was not quarantined");
    let _ = std::fs::remove_dir_all(&root);
}
