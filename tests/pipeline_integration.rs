//! Cross-crate integration tests: generator -> tokenizer -> LM -> SDEA ->
//! metrics, exercised through the public umbrella API.

use sdea::prelude::*;

fn tiny_cfg(seed: u64) -> SdeaConfig {
    let mut cfg = SdeaConfig::test_tiny();
    cfg.attr_epochs = 3;
    cfg.rel_epochs = 6;
    cfg.max_seq = 32;
    cfg.seed = seed;
    cfg
}

fn run_pipeline(profile: &DatasetProfile, seed: u64) -> (GeneratedDataset, SplitSeeds, SdeaModel) {
    let ds = sdea::synth::generate(profile);
    let mut rng = Rng::seed_from_u64(seed);
    let split = ds.seeds.split_paper(&mut rng);
    let corpus = sdea::synth::corpus::dataset_corpus(&ds);
    let model = SdeaPipeline {
        kg1: ds.kg1(),
        kg2: ds.kg2(),
        split: &split,
        corpus: &corpus,
        cfg: tiny_cfg(seed),
        variant: sdea::core::rel_module::RelVariant::Full,
    }
    .run();
    (ds, split, model)
}

#[test]
fn sdea_end_to_end_beats_random_through_public_api() {
    let (ds, split, model) = run_pipeline(&DatasetProfile::dbp15k_fr_en(80, 5), 5);
    let m = model.test_metrics(&split.test);
    let chance = 1.0 / ds.kg2().num_entities() as f64;
    assert!(m.hits1 > 5.0 * chance, "H@1 {:.3} vs chance {:.4}", m.hits1, chance);
    assert!(m.hits10 >= m.hits1);
    assert!(m.mrr >= m.hits1);
}

#[test]
fn embeddings_have_expected_shapes_and_are_finite() {
    let (ds, _split, model) = run_pipeline(&DatasetProfile::srprs_en_fr(60, 9), 9);
    assert_eq!(model.h_a1.shape()[0], ds.kg1().num_entities());
    assert_eq!(model.ent1.shape()[1], 3 * model.h_a1.shape()[1]);
    assert!(model.ent1.all_finite());
    assert!(model.ent2.all_finite());
}

#[test]
fn pipeline_is_deterministic_given_seed() {
    let (_, split1, model1) = run_pipeline(&DatasetProfile::dbp15k_fr_en(60, 13), 13);
    let (_, split2, model2) = run_pipeline(&DatasetProfile::dbp15k_fr_en(60, 13), 13);
    assert_eq!(split1.test, split2.test);
    let m1 = model1.test_metrics(&split1.test);
    let m2 = model2.test_metrics(&split2.test);
    assert_eq!(m1, m2, "same seed must reproduce identical metrics");
    assert_eq!(model1.ent1, model2.ent1);
}

#[test]
fn stable_matching_consistent_with_similarity() {
    let (_, split, model) = run_pipeline(&DatasetProfile::dbp15k_fr_en(60, 17), 17);
    let result = model.align_test(&split.test);
    let matched = sdea::core::align::stable_matching(&result.sim);
    // every row matched (columns >= rows), all assignments distinct
    let assigned: Vec<usize> = matched.iter().flatten().copied().collect();
    assert_eq!(assigned.len(), split.test.len());
    let set: std::collections::HashSet<_> = assigned.iter().collect();
    assert_eq!(set.len(), assigned.len());
}

#[test]
fn generated_kg_round_trips_through_tsv() {
    let ds = sdea::synth::generate(&DatasetProfile::srprs_dbp_yg(60, 3));
    let dir = std::env::temp_dir().join(format!("sdea_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let rel = dir.join("rel.tsv");
    let attr = dir.join("attr.tsv");
    sdea::kg::io::save_kg(ds.kg1(), &rel, &attr).unwrap();
    let back = sdea::kg::io::load_kg(&rel, &attr).unwrap();
    assert_eq!(back.rel_triples().len(), ds.kg1().rel_triples().len());
    assert_eq!(back.attr_triples().len(), ds.kg1().attr_triples().len());
    // links round trip too
    let links = dir.join("links.tsv");
    sdea::kg::io::save_links(&ds.seeds, ds.kg1(), ds.kg2(), &links).unwrap();
    let seeds2 = sdea::kg::io::load_links(ds.kg1(), ds.kg2(), &links).unwrap();
    assert_eq!(seeds2, ds.seeds);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ablation_variants_all_run() {
    use sdea::core::rel_module::RelVariant;
    let ds = sdea::synth::generate(&DatasetProfile::dbp15k_fr_en(50, 23));
    let mut rng = Rng::seed_from_u64(23);
    let split = ds.seeds.split_paper(&mut rng);
    let corpus = sdea::synth::corpus::dataset_corpus(&ds);
    for variant in [RelVariant::Full, RelVariant::MeanPool, RelVariant::NoGru] {
        let model = SdeaPipeline {
            kg1: ds.kg1(),
            kg2: ds.kg2(),
            split: &split,
            corpus: &corpus,
            cfg: tiny_cfg(23),
            variant,
        }
        .run();
        let m = model.test_metrics(&split.test);
        assert!(m.mrr > 0.0, "{variant:?} produced degenerate ranking");
    }
}
