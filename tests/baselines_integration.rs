//! Integration tests for the baseline suite: each family runs end-to-end
//! on shared datasets and the paper's qualitative orderings hold.

use sdea::baselines::cea::Cea;
use sdea::baselines::gnn::{Gcn, GnnParams};
use sdea::baselines::name_gcn::NameGcn;
use sdea::baselines::transe::{JapeStru, TransEParams};
use sdea::baselines::{AlignmentMethod, MethodInput};
use sdea::prelude::*;

struct Fixture {
    ds: GeneratedDataset,
    split: SplitSeeds,
    corpus: Vec<String>,
}

impl Fixture {
    fn new(profile: &DatasetProfile, seed: u64) -> Self {
        let ds = sdea::synth::generate(profile);
        let mut rng = Rng::seed_from_u64(seed);
        let split = ds.seeds.split_paper(&mut rng);
        let corpus = sdea::synth::corpus::dataset_corpus(&ds);
        Fixture { ds, split, corpus }
    }

    fn input(&self) -> MethodInput<'_> {
        MethodInput {
            kg1: self.ds.kg1(),
            kg2: self.ds.kg2(),
            split: &self.split,
            corpus: &self.corpus,
            seed: 99,
        }
    }
}

fn quick_gnn() -> GnnParams {
    GnnParams { epochs: 25, in_dim: 32, dim: 32, ..GnnParams::default() }
}

#[test]
fn literal_methods_dominate_structure_methods_on_literal_names() {
    let fx = Fixture::new(&DatasetProfile::srprs_dbp_wd(120, 55), 55);
    let input = fx.input();
    let cea = Cea { params: quick_gnn(), ..Cea::default() }.align(&input).metrics();
    let gcn = Gcn(quick_gnn()).align(&input).metrics();
    assert!(
        cea.hits1 > gcn.hits1 + 0.2,
        "CEA (literal) {:.2} must dominate GCN (structure) {:.2} on DBP-WD",
        cea.hits1,
        gcn.hits1
    );
}

#[test]
fn name_methods_collapse_on_qid_dataset() {
    let fx = Fixture::new(&DatasetProfile::openea_d_w(120, 66), 66);
    let input = fx.input();
    let mut rdgcn = NameGcn::rdgcn();
    rdgcn.params = quick_gnn();
    let dw = rdgcn.align(&input).metrics();

    let fx2 = Fixture::new(&DatasetProfile::srprs_dbp_wd(120, 66), 66);
    let input2 = fx2.input();
    let wd = rdgcn.align(&input2).metrics();
    assert!(
        wd.hits1 > dw.hits1 + 0.2,
        "RDGCN* must collapse on Q-ids: DBP-WD {:.2} vs D-W {:.2}",
        wd.hits1,
        dw.hits1
    );
}

#[test]
fn every_method_produces_valid_metrics() {
    // smoke across the whole registry on one tiny dataset
    let fx = Fixture::new(&DatasetProfile::dbp15k_fr_en(80, 77), 77);
    let input = fx.input();
    // a fast sub-registry: one per family
    let methods: Vec<Box<dyn AlignmentMethod>> = vec![
        Box::new(JapeStru(TransEParams { epochs: 20, dim: 32, ..TransEParams::default() })),
        Box::new(Gcn(quick_gnn())),
        Box::new(NameGcn::hgcn()),
        Box::new(Cea { params: quick_gnn(), ..Cea::default() }),
    ];
    for m in methods {
        let r = m.align(&input);
        let metrics = r.metrics();
        assert!(metrics.hits1 <= metrics.hits10, "{}", m.name());
        assert!(metrics.mrr > 0.0 && metrics.mrr <= 1.0, "{}", m.name());
        assert_eq!(r.sim.shape()[0], fx.split.test.len(), "{}", m.name());
        assert_eq!(r.sim.shape()[1], fx.ds.kg2().num_entities(), "{}", m.name());
        assert!(r.sim.all_finite(), "{}", m.name());
    }
}

#[test]
fn sdea_beats_structure_baseline_on_sparse_data() {
    // the long-tail claim at integration level: SRPRS-style data, SDEA vs
    // a structure-only method
    let fx = Fixture::new(&DatasetProfile::srprs_en_fr(100, 88), 88);
    let mut cfg = SdeaConfig::test_tiny();
    cfg.attr_epochs = 3;
    cfg.rel_epochs = 6;
    cfg.max_seq = 48;
    cfg.lm_hidden = 64;
    cfg.embed_dim = 64;
    cfg.seed = 88;
    let model = SdeaPipeline {
        kg1: fx.ds.kg1(),
        kg2: fx.ds.kg2(),
        split: &fx.split,
        corpus: &fx.corpus,
        cfg,
        variant: RelVariant::Full,
    }
    .run();
    let sdea = model.test_metrics(&fx.split.test);
    let input = fx.input();
    let base = JapeStru(TransEParams { epochs: 30, dim: 32, ..TransEParams::default() })
        .align(&input)
        .metrics();
    assert!(
        sdea.hits1 > base.hits1,
        "SDEA {:.2} must beat structure-only {:.2} on sparse data",
        sdea.hits1,
        base.hits1
    );
}
