//! Offline drop-in subset of the [proptest](https://crates.io/crates/proptest)
//! API, vendored so the workspace's property tests run in air-gapped builds
//! where the registry mirror is unreachable.
//!
//! Scope: exactly the surface the workspace tests use — the [`proptest!`]
//! macro with a `proptest_config` attribute, numeric range strategies,
//! tuple strategies, [`collection::vec`], character-class string patterns
//! (`"[a-z0-9 ]{0,20}"`, `".{0,120}"`), [`Strategy::prop_map`] and the
//! `prop_assert*` macros. Shrinking is intentionally not implemented: a
//! failing case panics with the generated inputs instead.

#![forbid(unsafe_code)]

use std::ops::Range;

// ------------------------------------------------------------------ rng

/// Deterministic generator (splitmix64) seeded per test from the test's
/// module path, so failures reproduce across runs and machines.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `name`.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ------------------------------------------------------------- strategy

/// A generator of test inputs. Mirror of proptest's trait, without the
/// shrinking machinery.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ------------------------------------------------------- string patterns

/// `&str` is a strategy: the string is parsed as a small regex subset —
/// a sequence of `.` / `[class]` / literal atoms, each with an optional
/// `{n}` or `{m,n}` quantifier — and matching strings are generated.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let count = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.pick(rng));
            }
        }
        out
    }
}

enum Atom {
    /// `.` — any char except newline.
    Any,
    /// `[...]` or a literal char.
    OneOf(Vec<char>),
}

impl Atom {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Any => {
                // Mostly printable ASCII with occasional multi-byte chars so
                // "any text" properties see non-trivial unicode.
                const EXOTIC: &[char] = &['é', 'ß', 'Ω', '中', 'な', '–', '\t', '"', '\''];
                if rng.below(8) == 0 {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).unwrap_or(' ')
                }
            }
            Atom::OneOf(chars) => chars[rng.below(chars.len() as u64) as usize],
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        match chars[i] {
                            't' => '\t',
                            'n' => '\n',
                            other => other,
                        }
                    } else {
                        chars[i]
                    };
                    // range like a-z (a '-' that is not last and not first)
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for v in c as u32..=hi as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                members.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        members.push(c);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                assert!(!members.is_empty(), "empty character class in pattern {pat:?}");
                Atom::OneOf(members)
            }
            lit => {
                i += 1;
                Atom::OneOf(vec![lit])
            }
        };
        // optional quantifier
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unclosed {") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(max >= min, "inverted quantifier in pattern {pat:?}");
        atoms.push((atom, min, max));
    }
    atoms
}

// ----------------------------------------------------------- collections

/// Length specification for [`collection::vec`]: an exact length or a
/// half-open range, mirroring proptest's `SizeRange`.
#[derive(Copy, Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works via the prelude.
pub mod prop {
    pub use crate::collection;
}

// -------------------------------------------------------------- running

/// Runner configuration; only `cases` is honored.
#[derive(Copy, Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (carried out of the test body by the
/// `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with generated inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}: {}",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assert_ne failed: both {:?}",
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut proptest_rng =
                    $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                    let inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg,)*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name), case + 1, config.cases, e.0, inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::generate(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn patterns_match_their_class() {
        let mut rng = TestRng::for_test("patterns");
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z0-9 ]{1,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
            let t = Strategy::generate(&".{0,10}", &mut rng);
            assert!(t.chars().count() <= 10);
            assert!(!t.contains('\n'));
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..50 {
            let v =
                Strategy::generate(&prop::collection::vec((0u8..4, -1.0f32..1.0), 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&(a, f)| a < 4 && (-1.0..1.0).contains(&f)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let va = Strategy::generate(&prop::collection::vec(0u64..1000, 10usize), &mut a);
        let vb = Strategy::generate(&prop::collection::vec(0u64..1000, 10usize), &mut b);
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself works end-to-end.
        #[test]
        fn macro_roundtrip(x in 0usize..50, s in "[ab]{1,3}") {
            prop_assert!(x < 50);
            prop_assert!(!s.is_empty(), "s was {:?}", s);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
