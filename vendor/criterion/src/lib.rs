//! Offline drop-in subset of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API, vendored for air-gapped builds where the registry
//! mirror is unreachable.
//!
//! Implements wall-clock sampling with median/mean reporting — enough for
//! the relative comparisons the workspace microbenches make (e.g. serial
//! vs. parallel kernels). Statistical outlier analysis, plotting and
//! baselines are intentionally out of scope.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(150),
            target_time: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Optional filter: `cargo bench -- <substring>`.
        let filter: Vec<String> =
            std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        if !filter.is_empty() && !filter.iter().any(|p| name.contains(p.as_str())) {
            return self;
        }
        let mut b =
            Bencher { samples: Vec::new(), budget: self.target_time, warm_up: self.warm_up };
        // One sample call per requested sample; each Bencher::iter call
        // internally loops enough iterations to be measurable.
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(name, &b.samples);
        self
    }

    /// Final summary hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// Per-benchmark measurement state handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling the inner iteration count so a sample
    /// is long enough to measure reliably.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration on the first sample only.
        let iters = if self.samples.is_empty() {
            let mut n = 1u64;
            loop {
                let t0 = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                let dt = t0.elapsed();
                if dt >= self.warm_up || n >= 1 << 20 {
                    let per_iter = dt.as_secs_f64() / n as f64;
                    let budget = self.budget.as_secs_f64() / 20.0;
                    break ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
                }
                n *= 2;
            }
        } else {
            self.calibrated()
        };
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(t0.elapsed() / iters as u32);
    }

    /// Like [`Bencher::iter`] but re-creates the input with `setup` outside
    /// the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.samples.push(t0.elapsed());
    }

    fn calibrated(&self) -> u64 {
        // Reuse the first sample's duration to keep per-sample cost stable.
        let per = self.samples[0].as_secs_f64().max(1e-9);
        let budget = self.budget.as_secs_f64() / 20.0;
        ((budget / per) as u64).clamp(1, 1 << 20)
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let best = sorted[0];
    let worst = sorted[sorted.len() - 1];
    println!(
        "{name:<44} time: [{} {} {}]",
        fmt_duration(best),
        fmt_duration(median),
        fmt_duration(worst)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group; both the struct-like and positional forms of
/// the real macro are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(30));
        // Must not panic and must honor the closure.
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
    }
}
