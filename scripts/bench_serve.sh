#!/usr/bin/env bash
# Serving-path benchmark: client-observed latency (p50/p99) and
# throughput (QPS) for the sdea-serve HTTP server, per concurrency level.
#
# bench_serve is self-contained: it trains the tiny fixture model
# in-process, serves it on an ephemeral loopback port, fires closed-loop
# client threads at it, and writes the report to
# results/BENCH_serve.json. Concurrency > 1 exercises the request
# batcher — the coalesced batch sizes show up under `serve.batch_size`
# in GET /metrics.
#
# SDEA_THREADS controls the model's thread budget (default 8);
# SDEA_BATCH_WINDOW_US / SDEA_MAX_BATCH tune the batcher itself.
set -euo pipefail
cd "$(dirname "$0")/.."

export SDEA_THREADS="${SDEA_THREADS:-8}"
export SDEA_OBS=1

echo "=== bench_serve: serving latency/QPS -> results/BENCH_serve.json ==="
cargo build --release -p sdea-serve --bin bench_serve
./target/release/bench_serve --levels 1,4 "$@"

echo "bench_serve.sh: done"
