#!/usr/bin/env bash
# Runs every experiment of the SDEA reproduction in sequence and archives
# the outputs under results/. SDEA_SCALE=quick|full controls dataset size.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
# Preflight: fmt + clippy + full test suite. SDEA_SKIP_CI=1 bypasses it
# when iterating on a single experiment.
if [ "${SDEA_SKIP_CI:-0}" != "1" ]; then
  ./scripts/ci.sh || exit 1
fi
cargo build --release -p sdea-bench || exit 1
run() {
  local name="$1"
  echo "=== $name ==="
  ./target/release/"$name" > "results/$name.txt" 2> "results/$name.log"
  tail -5 "results/$name.txt"
}
run table1_stats
run table6_degrees
run error_analysis
run table3_dbp15k
run table4_srprs
run table5_openea
run stable_matching_boost
run ablation
run extension_numeric
run extension_bootstrap
run attention_analysis
echo "all experiments archived under results/"
echo "run reports:"
ls results/run_report_*.json 2> /dev/null || echo "  (none written — did the SDEA tables run?)"
