#!/usr/bin/env bash
# Scaling-curve benchmark: out-of-core embedding + blocked evaluation
# against full materialization, with per-phase peak-memory measurement.
#
# Runs the bench_scale binary over DBP15K-profile worlds at 1x/4x/10x
# scale. At each point the embed-then-rank workload runs twice — once
# through the sharded spill + blocked-shard evaluator, once through the
# materialized table + n×m similarity matrix — asserting the two agree
# bitwise on Hits@1/Hits@10/MRR, and writes wall time plus each phase's
# incremental allocator peak (and the process VmHWM) to
# results/BENCH_scale.json. Exits non-zero unless the sharded peak at the
# largest scale stays under half the materialized peak — the out-of-core
# acceptance bar. The quick version (two small points, equality
# assertions only) is what scripts/ci.sh runs as `bench_scale --smoke`.
#
# SDEA_THREADS controls the thread budget (default 8; the par layer caps
# it at the machine's cores). SDEA_MEM=0 disables allocation counting —
# the bench still runs and reports, but skips the peak-ratio bar.
set -euo pipefail
cd "$(dirname "$0")/.."

export SDEA_THREADS="${SDEA_THREADS:-8}"
export SDEA_OBS=1

echo "=== bench_scale: out-of-core scaling curve -> results/BENCH_scale.json ==="
cargo build --release -p sdea-bench --bin bench_scale
./target/release/bench_scale

echo "bench_scale.sh: done"
