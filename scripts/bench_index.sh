#!/usr/bin/env bash
# Retrieval-layer benchmark: recall@10-vs-speedup curves for the IVF +
# int8 index against the exact blocked scan.
#
# Runs the bench_index binary at 1/10 benchmark scale (n=1500, d=128),
# sweeping nlist x nprobe x quantize, and writes the curve to
# results/BENCH_index.json. Exits non-zero unless some swept setting
# reaches >= 5x candidate-retrieval speedup at recall@10 >= 0.95 — the
# retrieval layer's acceptance bar. The quick correctness-asserting
# version (small world, bitwise nprobe=all check) is what scripts/ci.sh
# runs as `bench_index --smoke`.
#
# SDEA_THREADS controls the thread budget (default 8; the par layer caps
# it at the machine's cores).
set -euo pipefail
cd "$(dirname "$0")/.."

export SDEA_THREADS="${SDEA_THREADS:-8}"
export SDEA_OBS=1

echo "=== bench_index: IVF recall/speedup sweep -> results/BENCH_index.json ==="
cargo build --release -p sdea-bench --bin bench_index
./target/release/bench_index

echo "bench_index.sh: done"
