#!/usr/bin/env bash
# Kernel + pipeline throughput benchmark for the tiled matmul work.
#
# Runs the criterion-shim matmul microbenches (tiled vs. naive reference at
# 128/256/512) and the bench_kernels binary, which re-measures the kernels,
# runs one quick-scale FR-EN pipeline, and writes results/BENCH_pr3.json
# with GFLOP/s and per-stage wall times.
#
# SDEA_THREADS controls the pipeline's thread budget (default 8; the par
# layer caps it at the machine's cores). Set SDEA_BASELINE_WALL to a
# same-machine wall-time measurement of the previous revision to get a
# fair speedup_vs_baseline in the report.
set -euo pipefail
cd "$(dirname "$0")/.."

export SDEA_THREADS="${SDEA_THREADS:-8}"
export SDEA_OBS=1

echo "=== criterion microbench: matmul (tiled vs reference) ==="
cargo bench -p sdea-bench --bench microbench -- matmul

echo "=== bench_kernels: GFLOP/s + quick-scale pipeline -> results/BENCH_pr3.json ==="
cargo build --release -p sdea-bench --bin bench_kernels
./target/release/bench_kernels

echo "bench_kernels.sh: done"
