#!/usr/bin/env bash
# Repo verification gate: formatting, lints, build and the full test suite.
# Run before committing or as the preflight of run_all_experiments.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

# Workspace invariant gates (DESIGN.md §11 and §16): determinism
# (hash-order iteration, ad-hoc threads, wall clocks), NaN ordering across
# line breaks, atomic-write discipline, the ratcheted panic budget in
# lint_baseline.toml, #![forbid(unsafe_code)] on every crate root, and the
# cross-file contracts (env/obs/blob registries, fingerprint coverage).
# --json leaves the machine-readable findings in results/lint_report.json.
echo "=== sdea-lint (workspace invariant gates) ==="
cargo run --release -q -p sdea-lint -- --json
test -s results/lint_report.json || {
  echo "sdea-lint did not write results/lint_report.json" >&2
  exit 1
}
grep -q '"clean":true' results/lint_report.json || {
  echo "results/lint_report.json does not say clean" >&2
  exit 1
}

# Registry smoke: the contract analyses must actually be armed. Deleting
# one committed env entry has to turn the lint red — if this passes green,
# the registry gate is dead code.
echo "=== sdea-lint (corrupted-registry smoke) ==="
LINT_SMOKE_DIR="$(mktemp -d)"
grep -v '^SDEA_THREADS' env_registry.toml > "$LINT_SMOKE_DIR/env_registry.toml"
if cargo run --release -q -p sdea-lint -- \
    --env-registry "$LINT_SMOKE_DIR/env_registry.toml" >/dev/null 2>&1; then
  echo "sdea-lint passed with a gutted env registry: contract gate is dead" >&2
  rm -rf "$LINT_SMOKE_DIR"
  exit 1
fi
rm -rf "$LINT_SMOKE_DIR"

echo "=== tier-1: release build + tests ==="
cargo build --workspace --release
cargo test -q --workspace --release

# Budget equivalence with observability on: the instrumentation layer must
# not perturb a single bit of any computed tensor at any thread count.
# The retrieval suites additionally pin the nprobe=all exact bypass and the
# retriever-backed metrics/CSLS paths to the matrix paths, bitwise.
for threads in 1 8; do
  echo "=== budget equivalence: SDEA_THREADS=$threads SDEA_OBS=1 ==="
  SDEA_OBS=1 SDEA_THREADS="$threads" cargo test -q --release \
    -p sdea-tensor -p sdea-eval -p sdea-core --test par_equivalence
  SDEA_OBS=1 SDEA_THREADS="$threads" cargo test -q --release \
    -p sdea-index --test equivalence
  SDEA_OBS=1 SDEA_THREADS="$threads" cargo test -q --release \
    -p sdea-eval --test retriever_equivalence
done

# Quick kernel throughput check (seconds): tiled vs. reference matmul
# GFLOP/s, written to results/BENCH_pr3_kernels.json. The full benchmark
# including a pipeline run is scripts/bench_kernels.sh.
echo "=== kernel throughput (quick) ==="
./target/release/bench_kernels --kernels-only

# Retrieval-layer smoke (seconds): small-world IVF sweep with bitwise
# nprobe=all assertions, written to results/BENCH_index_smoke.json. The
# full recall/speedup curve is scripts/bench_index.sh.
echo "=== retrieval index smoke ==="
./target/release/bench_index --smoke

# Out-of-core scaling smoke (seconds): sharded embed + blocked-shard
# evaluation vs full materialization at two small scale points, asserting
# bitwise-equal metrics, written to results/BENCH_scale_smoke.json. The
# full memory-tracked curve is scripts/bench_scale.sh.
echo "=== out-of-core scaling smoke ==="
./target/release/bench_scale --smoke

# Cross-encoder rerank smoke (seconds): small world, trains the pair head
# on stage-1 hard negatives, asserts the rerank-off path is bitwise the
# plain blocked path and that the rerank pass itself is deterministic,
# written to results/BENCH_rerank_smoke.json. The full ΔHits@1/latency
# sweep at reproduction scale is a plain bench_rerank run.
echo "=== rerank smoke ==="
./target/release/bench_rerank --smoke

# Rerank-off bitwise equivalence: with no reranker configured, serving and
# evaluation answers must be bit-identical to the stage-1-only paths at
# both thread budgets (the serve suite also pins the reranked path's
# batch-invisibility; the core property suite pins pair-scoring's
# order/padding invariance).
for threads in 1 8; do
  echo "=== rerank equivalence: SDEA_THREADS=$threads ==="
  SDEA_THREADS="$threads" cargo test -q --release -p sdea-serve --test determinism
  SDEA_THREADS="$threads" cargo test -q --release -p sdea-eval reranked_blocked
  SDEA_THREADS="$threads" cargo test -q --release -p sdea-core --test rerank_property
done

# Fault-injection suite: serialization atomicity/corruption at the tensor
# layer, checkpoint quarantine-and-fall-back at the core layer.
echo "=== fault-injection suite ==="
cargo test -q --release -p sdea-tensor -- serialize:: fault::
cargo test -q --release -p sdea-core -- checkpoint::

# Kill-and-resume smoke: a training process killed mid-write by an
# injected fault must resume bit-identically (drives the real binary as
# child processes; covers SDEA_THREADS 1 and 8).
echo "=== kill-and-resume smoke ==="
cargo test -q --release --test checkpoint_resume

# Shard-spill kill-and-resume smoke (drives the real binary as child
# processes): with a checkpoint directory the final embedding tables
# stream to disk shards, and every shard write is a checkpoint. A run
# killed by an injected fault during the second shard write (exit 137)
# must, on rerun, resume at the first missing shard and produce a model
# byte-identical to an uninterrupted reference run.
echo "=== shard-spill kill-and-resume smoke ==="
SPILL_TMP="$(mktemp -d)"
trap 'rm -rf "$SPILL_TMP"' EXIT
./target/release/sdea generate zh_en "$SPILL_TMP/ds" --links 60 --seed 7
SDEA_SHARD_ROWS=8 ./target/release/sdea align "$SPILL_TMP/ds" --tiny --seed 7 \
  --checkpoint "$SPILL_TMP/ckpt_ref" --out "$SPILL_TMP/ref.sdt"
set +e
SDEA_SHARD_ROWS=8 SDEA_FAULT=shards.write:2:kill ./target/release/sdea align \
  "$SPILL_TMP/ds" --tiny --seed 7 --checkpoint "$SPILL_TMP/ckpt" --out "$SPILL_TMP/resumed.sdt"
STATUS=$?
set -e
[ "$STATUS" -eq 137 ] || { echo "spill smoke: expected kill exit 137, got $STATUS"; exit 1; }
SDEA_SHARD_ROWS=8 ./target/release/sdea align "$SPILL_TMP/ds" --tiny --seed 7 \
  --checkpoint "$SPILL_TMP/ckpt" --out "$SPILL_TMP/resumed.sdt"
cmp "$SPILL_TMP/ref.sdt" "$SPILL_TMP/resumed.sdt" \
  || { echo "spill smoke: resumed model differs from uninterrupted reference"; exit 1; }
echo "spill smoke: resumed model byte-identical after mid-shard kill"
rm -rf "$SPILL_TMP"

# Serving smoke (drives the real binaries): train a tiny model, export
# the query encoder, serve it over HTTP, and require the served top-1 to
# equal the offline query path's answer for the same text. `wait` then
# checks the server exited 0 — a clean graceful shutdown, not a kill.
echo "=== serving smoke ==="
SERVE_TMP="$(mktemp -d)"
trap 'rm -rf "$SERVE_TMP"' EXIT
./target/release/sdea generate zh_en "$SERVE_TMP/ds" --links 60 --seed 7
./target/release/sdea align "$SERVE_TMP/ds" --tiny --seed 7 \
  --out "$SERVE_TMP/model.sdt" --encoder-out "$SERVE_TMP/encoder.sdqe"
QUERY="capital city founded 1850 population 120000"
OFFLINE=$(./target/release/sdea rank "$SERVE_TMP/ds" "$SERVE_TMP/model.sdt" \
  --query "$QUERY" --encoder "$SERVE_TMP/encoder.sdqe" --top 1 | sed -n '2p' | awk '{print $2}')
[ -n "$OFFLINE" ] || { echo "serve smoke: offline rank produced no answer"; exit 1; }
./target/release/sdea_serve serve "$SERVE_TMP/ds" "$SERVE_TMP/model.sdt" \
  "$SERVE_TMP/encoder.sdqe" --addr 127.0.0.1:0 --port-file "$SERVE_TMP/port" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_TMP/port" ] && break; sleep 0.1; done
[ -s "$SERVE_TMP/port" ] || { echo "serve smoke: server never wrote its port file"; exit 1; }
PORT="$(cat "$SERVE_TMP/port")"
SERVED=$(./target/release/sdea_serve query "127.0.0.1:$PORT" "$QUERY" --k 1 | awk 'NR==1{print $2}')
if [ -z "$SERVED" ] || [ "$SERVED" != "$OFFLINE" ]; then
  echo "serve smoke: served top-1 '$SERVED' != offline answer '$OFFLINE'"
  exit 1
fi
./target/release/sdea_serve shutdown "127.0.0.1:$PORT"
wait "$SERVE_PID"
echo "serve smoke: served top-1 '$SERVED' matches offline; graceful shutdown clean"

# Serving latency smoke: closed-loop load at 2 concurrency levels,
# report to results/BENCH_serve.json. Full run is scripts/bench_serve.sh.
echo "=== serving latency smoke ==="
./target/release/bench_serve --smoke

# Env strictness: a malformed SDEA_* value must abort startup with a
# diagnostic naming the variable — never be silently ignored.
echo "=== env strictness smoke ==="
if SDEA_MAX_BATCH=banana ./target/release/sdea_serve serve x y z 2>"$SERVE_TMP/env_err"; then
  echo "env smoke: malformed SDEA_MAX_BATCH was accepted"
  exit 1
fi
grep -q "SDEA_MAX_BATCH" "$SERVE_TMP/env_err" \
  || { echo "env smoke: diagnostic does not name SDEA_MAX_BATCH"; cat "$SERVE_TMP/env_err"; exit 1; }
if SDEA_THREADS=-3 ./target/release/sdea_serve serve x y z 2>"$SERVE_TMP/env_err"; then
  echo "env smoke: malformed SDEA_THREADS was accepted"
  exit 1
fi
grep -q "SDEA_THREADS" "$SERVE_TMP/env_err" \
  || { echo "env smoke: diagnostic does not name SDEA_THREADS"; cat "$SERVE_TMP/env_err"; exit 1; }

echo "ci.sh: all checks passed"
