#!/usr/bin/env bash
# Repo verification gate: formatting, lints, build and the full test suite.
# Run before committing or as the preflight of run_all_experiments.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== tier-1: release build + tests ==="
cargo build --workspace --release
cargo test -q --workspace --release

echo "ci.sh: all checks passed"
