#!/usr/bin/env bash
# Repo verification gate: formatting, lints, build and the full test suite.
# Run before committing or as the preflight of run_all_experiments.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

# Workspace invariant gates (DESIGN.md §11): determinism (hash-order
# iteration, ad-hoc threads, wall clocks), NaN ordering across line breaks,
# atomic-write discipline, the ratcheted panic budget in lint_baseline.toml
# and #![forbid(unsafe_code)] on every crate root.
echo "=== sdea-lint (workspace invariant gates) ==="
cargo run --release -q -p sdea-lint

echo "=== tier-1: release build + tests ==="
cargo build --workspace --release
cargo test -q --workspace --release

# Budget equivalence with observability on: the instrumentation layer must
# not perturb a single bit of any computed tensor at any thread count.
# The retrieval suites additionally pin the nprobe=all exact bypass and the
# retriever-backed metrics/CSLS paths to the matrix paths, bitwise.
for threads in 1 8; do
  echo "=== budget equivalence: SDEA_THREADS=$threads SDEA_OBS=1 ==="
  SDEA_OBS=1 SDEA_THREADS="$threads" cargo test -q --release \
    -p sdea-tensor -p sdea-eval -p sdea-core --test par_equivalence
  SDEA_OBS=1 SDEA_THREADS="$threads" cargo test -q --release \
    -p sdea-index --test equivalence
  SDEA_OBS=1 SDEA_THREADS="$threads" cargo test -q --release \
    -p sdea-eval --test retriever_equivalence
done

# Quick kernel throughput check (seconds): tiled vs. reference matmul
# GFLOP/s, written to results/BENCH_pr3_kernels.json. The full benchmark
# including a pipeline run is scripts/bench_kernels.sh.
echo "=== kernel throughput (quick) ==="
./target/release/bench_kernels --kernels-only

# Retrieval-layer smoke (seconds): small-world IVF sweep with bitwise
# nprobe=all assertions, written to results/BENCH_index_smoke.json. The
# full recall/speedup curve is scripts/bench_index.sh.
echo "=== retrieval index smoke ==="
./target/release/bench_index --smoke

# Fault-injection suite: serialization atomicity/corruption at the tensor
# layer, checkpoint quarantine-and-fall-back at the core layer.
echo "=== fault-injection suite ==="
cargo test -q --release -p sdea-tensor -- serialize:: fault::
cargo test -q --release -p sdea-core -- checkpoint::

# Kill-and-resume smoke: a training process killed mid-write by an
# injected fault must resume bit-identically (drives the real binary as
# child processes; covers SDEA_THREADS 1 and 8).
echo "=== kill-and-resume smoke ==="
cargo test -q --release --test checkpoint_resume

echo "ci.sh: all checks passed"
