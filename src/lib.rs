//! # sdea
//!
//! Umbrella crate for the SDEA entity-alignment system — a from-scratch
//! Rust reproduction of *"Semantics Driven Embedding Learning for Effective
//! Entity Alignment"* (Zhong et al., ICDE 2022).
//!
//! This crate re-exports the full workspace so applications depend on one
//! crate:
//!
//! * [`tensor`] — dense tensors + reverse-mode autograd
//! * [`text`] — WordPiece-style tokenization
//! * [`lm`] — the mini pre-trainable transformer (BERT substitute)
//! * [`kg`] — knowledge-graph stores, statistics, IO
//! * [`synth`] — benchmark generation (DBP15K / SRPRS / OpenEA profiles)
//! * [`core`] — SDEA itself (attribute + relation embedding, training,
//!   alignment)
//! * [`baselines`] — the comparison methods of the paper's tables
//! * [`eval`] — Hits@K / MRR metrics and reporting
//!
//! ## Quick start
//!
//! ```no_run
//! use sdea::prelude::*;
//!
//! // Generate a small DBP15K-style benchmark.
//! let ds = sdea::synth::generate(&DatasetProfile::dbp15k_fr_en(300, 7));
//! let mut rng = Rng::seed_from_u64(7);
//! let split = ds.seeds.split_paper(&mut rng);
//! let corpus = sdea::synth::corpus::dataset_corpus(&ds);
//!
//! // Train SDEA end-to-end.
//! let pipeline = SdeaPipeline {
//!     kg1: ds.kg1(),
//!     kg2: ds.kg2(),
//!     split: &split,
//!     corpus: &corpus,
//!     cfg: SdeaConfig::default(),
//!     variant: RelVariant::Full,
//! };
//! let model = pipeline.run();
//! println!("test H@1 = {:.1}%", model.test_metrics(&split.test).hits1 * 100.0);
//! ```

#![forbid(unsafe_code)]

pub use sdea_baselines as baselines;
pub use sdea_core as core;
pub use sdea_eval as eval;
pub use sdea_kg as kg;
pub use sdea_lm as lm;
pub use sdea_obs as obs;
pub use sdea_synth as synth;
pub use sdea_tensor as tensor;
pub use sdea_text as text;

/// The names most applications need.
pub mod prelude {
    pub use sdea_core::rel_module::RelVariant;
    pub use sdea_core::{SdeaConfig, SdeaModel, SdeaPipeline};
    pub use sdea_eval::AlignmentMetrics;
    pub use sdea_kg::{AlignmentSeeds, KgBuilder, KnowledgeGraph, SplitSeeds};
    pub use sdea_synth::{DatasetProfile, GeneratedDataset};
    pub use sdea_tensor::{Rng, Tensor};
}
