//! `sdea` — command-line interface to the entity-alignment system.
//!
//! Subcommands:
//!
//! * `generate <profile> <dir> [--links N] [--seed S] [--scale F]` —
//!   generate a benchmark dataset and write it as OpenEA-style TSV files;
//!   `--scale F` grows the profile F× for out-of-core scale testing.
//! * `align <dir> [--seed S] [--out model.sdt] [--encoder-out enc.sdqe]
//!   [--matching] [--tiny] [--checkpoint <ckpt-dir>] [--ckpt-every N]` —
//!   load a dataset directory (as written by `generate`, or any
//!   OpenEA-format dump), train SDEA, report metrics, optionally save the
//!   model and/or the query encoder (the artifact `sdea_serve` loads).
//!   With `--checkpoint`, training is crash-safe: rerunning the same
//!   command resumes from the last intact checkpoint in the directory,
//!   bit-identically.
//! * `rank <dir> <model.sdt> <entity-name> [--top K] [--attr]` — load a
//!   trained model and print the top-K aligned candidates for one KG1
//!   entity. `--attr` ranks in the attribute-embedding space (the space
//!   the serving path queries in) instead of the fused entity space.
//!   With `--query <text> --encoder <enc.sdqe>` the positional entity
//!   name is dropped and the query *text* is embedded through the saved
//!   encoder instead — the offline twin of `sdea_serve`'s `/v1/align`,
//!   used by CI to prove the served answer matches this path.
//! * `profiles` — list available dataset profiles.
//!
//! Dataset directory layout (`generate` writes, `align`/`rank` read):
//! `rel_triples_1  attr_triples_1  rel_triples_2  attr_triples_2  ent_links`.

#![forbid(unsafe_code)]

use sdea::prelude::*;
use std::path::{Path, PathBuf};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("align") => cmd_align(&args[1..]),
        Some("rank") => cmd_rank(&args[1..]),
        Some("profiles") => {
            for (name, desc) in PROFILES {
                println!("{name:<10} {desc}");
            }
            0
        }
        _ => {
            eprintln!(
                "usage: sdea <generate|align|rank|profiles> ...\n\
                 \n  sdea generate <profile> <dir> [--links N] [--seed S] [--scale F]\
                 \n  sdea align <dir> [--seed S] [--out model.sdt] [--encoder-out enc.sdqe]\
                 \n             [--matching] [--tiny] [--checkpoint <ckpt-dir>] [--ckpt-every N]\
                 \n  sdea rank <dir> <model.sdt> <entity-name> [--top K] [--attr]\
                 \n  sdea rank <dir> <model.sdt> --query <text> --encoder <enc.sdqe> [--top K]\
                 \n  sdea profiles"
            );
            2
        }
    };
    exit(code);
}

const PROFILES: &[(&str, &str)] = &[
    ("zh_en", "DBP15K ZH-EN: dense, transliterated names"),
    ("ja_en", "DBP15K JA-EN: dense, transliterated names"),
    ("fr_en", "DBP15K FR-EN: dense, near-literal names"),
    ("en_fr", "SRPRS EN-FR: sparse, long-tail, literal names"),
    ("en_de", "SRPRS EN-DE: sparse, long-tail, literal names"),
    ("dbp_wd", "SRPRS DBP-WD: sparse, monolingual"),
    ("dbp_yg", "SRPRS DBP-YG: sparse, attribute-poor YAGO side"),
    ("d_w", "OpenEA D-W V1: sparse, Wikidata Q-id names"),
];

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn profile_by_name(name: &str, links: usize, seed: u64) -> Option<DatasetProfile> {
    Some(match name {
        "zh_en" => DatasetProfile::dbp15k_zh_en(links, seed),
        "ja_en" => DatasetProfile::dbp15k_ja_en(links, seed),
        "fr_en" => DatasetProfile::dbp15k_fr_en(links, seed),
        "en_fr" => DatasetProfile::srprs_en_fr(links, seed),
        "en_de" => DatasetProfile::srprs_en_de(links, seed),
        "dbp_wd" => DatasetProfile::srprs_dbp_wd(links, seed),
        "dbp_yg" => DatasetProfile::srprs_dbp_yg(links, seed),
        "d_w" => DatasetProfile::openea_d_w(links, seed),
        _ => return None,
    })
}

fn cmd_generate(args: &[String]) -> i32 {
    let (Some(profile_name), Some(dir)) = (args.first(), args.get(1)) else {
        eprintln!("usage: sdea generate <profile> <dir> [--links N] [--seed S] [--scale F]");
        return 2;
    };
    let links = flag_value(args, "--links").and_then(|v| v.parse().ok()).unwrap_or(300);
    let seed = flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2022);
    // --scale F grows the profile F× (entities and triples scale
    // near-linearly with the link target; see DatasetProfile::scaled).
    let scale = match flag_value(args, "--scale").map(|v| v.parse::<usize>()) {
        None => 1,
        Some(Ok(f)) if f >= 1 => f,
        Some(_) => {
            eprintln!("--scale expects an integer factor >= 1");
            return 2;
        }
    };
    let Some(profile) = profile_by_name(profile_name, links, seed) else {
        eprintln!("unknown profile {profile_name}; see `sdea profiles`");
        return 2;
    };
    let ds = sdea::synth::generate(&profile.scaled(scale));
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return 1;
    }
    let write = || -> std::io::Result<()> {
        sdea::kg::io::save_kg(ds.kg1(), &dir.join("rel_triples_1"), &dir.join("attr_triples_1"))?;
        sdea::kg::io::save_kg(ds.kg2(), &dir.join("rel_triples_2"), &dir.join("attr_triples_2"))?;
        sdea::kg::io::save_links(&ds.seeds, ds.kg1(), ds.kg2(), &dir.join("ent_links"))
    };
    if let Err(e) = write() {
        eprintln!("write failed: {e}");
        return 1;
    }
    println!(
        "wrote {} ({} + {} entities, {} links) to {}",
        ds.name,
        ds.kg1().num_entities(),
        ds.kg2().num_entities(),
        ds.seeds.len(),
        dir.display()
    );
    0
}

fn load_dir(dir: &Path) -> std::io::Result<(KnowledgeGraph, KnowledgeGraph, AlignmentSeeds)> {
    let kg1 = sdea::kg::io::load_kg(&dir.join("rel_triples_1"), &dir.join("attr_triples_1"))?;
    let kg2 = sdea::kg::io::load_kg(&dir.join("rel_triples_2"), &dir.join("attr_triples_2"))?;
    let seeds = sdea::kg::io::load_links(&kg1, &kg2, &dir.join("ent_links"))?;
    Ok((kg1, kg2, seeds))
}

fn cmd_align(args: &[String]) -> i32 {
    let Some(dir) = args.first() else {
        eprintln!(
            "usage: sdea align <dir> [--seed S] [--out model.sdt] [--encoder-out enc.sdqe] \
             [--matching] [--tiny] [--checkpoint <ckpt-dir>] [--ckpt-every N]"
        );
        return 2;
    };
    let seed = flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(2022);
    let (kg1, kg2, seeds) = match load_dir(Path::new(dir)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot load dataset from {dir}: {e}");
            return 1;
        }
    };
    let mut rng = Rng::seed_from_u64(seed);
    let split = seeds.split_paper(&mut rng);
    let mut corpus: Vec<String> = kg1.attr_triples().iter().map(|t| t.value.clone()).collect();
    corpus.extend(kg2.attr_triples().iter().map(|t| t.value.clone()));
    // --tiny trades quality for speed (the unit-test configuration):
    // smoke runs, and the kill-and-resume integration test.
    let base = if args.iter().any(|a| a == "--tiny") {
        SdeaConfig::test_tiny()
    } else {
        SdeaConfig::default()
    };
    let mut cfg = SdeaConfig { seed, ..base };
    // --checkpoint enables crash-safe training: checkpoints land in the
    // directory, and a rerun pointed at the same directory resumes from
    // the last intact state, bit-identically.
    cfg.checkpoint_dir = flag_value(args, "--checkpoint").map(PathBuf::from);
    if let Some(every) = flag_value(args, "--ckpt-every").and_then(|v| v.parse().ok()) {
        cfg.checkpoint_every = every;
    }
    // SDEA_SHARD_ROWS overrides the embedding spill shard height — an
    // execution knob (bit-identical results at any value) exposed for the
    // out-of-core smoke tests; strict parse, exit 2 on a malformed value.
    if let Some(rows) =
        sdea::obs::env::parse_or_exit::<usize>("SDEA_SHARD_ROWS", "a non-negative integer")
    {
        cfg.embed_shard_rows = rows;
    }
    eprintln!(
        "training SDEA on {} + {} entities ({} train / {} valid / {} test links)...",
        kg1.num_entities(),
        kg2.num_entities(),
        split.train.len(),
        split.valid.len(),
        split.test.len()
    );
    let model = match (SdeaPipeline {
        kg1: &kg1,
        kg2: &kg2,
        split: &split,
        corpus: &corpus,
        cfg,
        variant: RelVariant::Full,
    })
    .try_run()
    {
        Ok(m) => m,
        Err(e) => {
            eprintln!("alignment failed: {e}");
            return 1;
        }
    };
    let result = model.align_test(&split.test);
    let m = result.metrics();
    println!("Hits@1 {:.1}%  Hits@10 {:.1}%  MRR {:.2}", m.hits1 * 100.0, m.hits10 * 100.0, m.mrr);
    if args.iter().any(|a| a == "--matching") {
        println!("Hits@1 with stable matching: {:.1}%", result.stable_matching_hits1() * 100.0);
    }
    if let Some(out) = flag_value(args, "--out") {
        if let Err(e) = sdea::core::model_io::save_model(&model, &out) {
            eprintln!("cannot save model: {e}");
            return 1;
        }
        println!("model saved to {out}");
    }
    if let Some(out) = flag_value(args, "--encoder-out") {
        // The encoder only exists when the attribute stage ran in this
        // process; a resume past attr_done has tables but no weights.
        let Some(module) = model.attr_module.as_ref() else {
            eprintln!(
                "cannot save encoder: the attribute stage was skipped (checkpoint resume); \
                 retrain from scratch to export the encoder"
            );
            return 1;
        };
        if let Err(e) = sdea::core::encoder_io::save_encoder(module, &out) {
            eprintln!("cannot save encoder: {e}");
            return 1;
        }
        println!("encoder saved to {out}");
    }
    0
}

fn cmd_rank(args: &[String]) -> i32 {
    let query_text = flag_value(args, "--query");
    let (Some(dir), Some(model_path)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: sdea rank <dir> <model.sdt> <entity-name> [--top K] [--attr]\n\
             \x20      sdea rank <dir> <model.sdt> --query <text> --encoder <enc.sdqe> [--top K]"
        );
        return 2;
    };
    let top = flag_value(args, "--top").and_then(|v| v.parse().ok()).unwrap_or(5usize);
    let attr_space = args.iter().any(|a| a == "--attr");
    let (kg1, kg2, _) = match load_dir(Path::new(dir)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("cannot load dataset from {dir}: {e}");
            return 1;
        }
    };
    let model = match sdea::core::model_io::load_model(model_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot load model: {e}");
            return 1;
        }
    };
    // Two query modes: a KG1 entity looked up in its table, or free text
    // embedded through the saved encoder (the serving path's offline twin
    // — always attribute-space).
    let (src, dst_table, label) = if let Some(text) = query_text {
        let Some(encoder_path) = flag_value(args, "--encoder") else {
            eprintln!("--query needs --encoder <enc.sdqe> (from `sdea align --encoder-out`)");
            return 2;
        };
        let encoder = match sdea::core::encoder_io::load_encoder(&encoder_path) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("cannot load encoder: {e}");
                return 1;
            }
        };
        (encoder.embed_one(&text), &model.h_a2, format!("{text:?}"))
    } else {
        let Some(entity) = args.get(2) else {
            eprintln!("usage: sdea rank <dir> <model.sdt> <entity-name> [--top K] [--attr]");
            return 2;
        };
        let Some(e1) = kg1.find_entity(entity) else {
            eprintln!("entity {entity:?} not found in KG1");
            return 1;
        };
        // --attr ranks in the attribute space (what `sdea_serve` queries
        // in); the default is the fused [H_r; H_a; H_m] entity space.
        let (src_table, dst_table) =
            if attr_space { (&model.h_a1, &model.h_a2) } else { (&model.ent1, &model.ent2) };
        (src_table.gather_rows(&[e1.0 as usize]), dst_table, entity.clone())
    };
    let sim = sdea::eval::cosine_matrix(&src, dst_table);
    let best = sdea::eval::top_k_indices(sim.data(), top);
    println!("top {top} candidates for {label}:");
    for (rank, &j) in best.iter().enumerate() {
        println!(
            "  {}. {:<30} cosine {:+.3}",
            rank + 1,
            kg2.entity_name(sdea::kg::EntityId(j as u32)),
            sim.data()[j]
        );
    }
    0
}
